"""Each lint rule against a deliberately-seeded violation (and a clean twin).

Every case feeds a small source snippet through
:func:`repro.lint.lint_source` under a path that puts it in the rule's
scope, then asserts the expected rule fires at the expected line — and that
the compliant variant stays clean.
"""

import textwrap

import pytest

from repro.lint import RULES, lint_source
from repro.lint.engine import module_name


def _lint(source, path="src/repro/core/example.py"):
    return lint_source(textwrap.dedent(source), path)


def _rule_ids(result):
    return [violation.rule_id for violation in result.violations]


# -- scope plumbing ---------------------------------------------------------

def test_module_name_resolution():
    assert module_name("src/repro/core/masking.py") == "repro.core.masking"
    assert module_name("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name("tests/nn/test_tensor_autograd.py") == \
        "tests.nn.test_tensor_autograd"
    assert module_name("scratch.py") == "scratch"


def test_every_rule_has_id_summary_and_hint():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.summary and rule.hint


# -- RNG001 -----------------------------------------------------------------

def test_rng001_flags_global_numpy_random():
    result = _lint("""
        import numpy as np
        x = np.random.rand(3)
    """)
    assert _rule_ids(result) == ["RNG001"]
    assert result.violations[0].line == 3


def test_rng001_flags_stdlib_random():
    result = _lint("""
        import random
        x = random.random()
    """)
    assert _rule_ids(result) == ["RNG001"]


def test_rng001_allows_generator_construction():
    result = _lint("""
        import numpy as np
        rng = np.random.default_rng(0)
        gen = np.random.Generator(np.random.PCG64(1))
        x = rng.normal(size=3)
    """)
    assert result.ok


def test_rng001_inactive_outside_repro():
    result = _lint("""
        import numpy as np
        x = np.random.rand(3)
    """, path="tests/nn/test_example.py")
    assert result.ok


# -- CLK001 -----------------------------------------------------------------

def test_clk001_flags_wall_clock_reads():
    result = _lint("""
        import time
        from datetime import datetime
        a = time.time()
        b = time.perf_counter()
        c = datetime.now()
    """)
    assert _rule_ids(result) == ["CLK001", "CLK001", "CLK001"]


def test_clk001_allows_clock_inside_obs():
    result = _lint("""
        import time
        a = time.time()
    """, path="src/repro/obs/clock.py")
    assert result.ok


# -- TEN001 -----------------------------------------------------------------

def test_ten001_flags_data_subscript_and_assignment():
    result = _lint("""
        def f(tensor, other):
            x = tensor.data[0]
            other.weight.data[1] = 0.0
            return x
    """)
    assert _rule_ids(result) == ["TEN001", "TEN001"]


def test_ten001_allows_attribute_reads_and_nn_scope():
    clean = _lint("""
        def f(tensor):
            return tensor.data.argmax()
    """)
    assert clean.ok
    in_nn = _lint("""
        def f(tensor):
            return tensor.data[0]
    """, path="src/repro/nn/tensor.py")
    assert in_nn.ok
    in_checkpoint = _lint("""
        def f(tensor):
            tensor.data[...] = 0.0
    """, path="src/repro/train/checkpoint.py")
    assert in_checkpoint.ok


# -- EVL001 -----------------------------------------------------------------

def test_evl001_flags_unguarded_predict_on_module():
    result = _lint("""
        class Head(Module):
            def predict(self, x):
                return self.forward(x)
    """)
    assert _rule_ids(result) == ["EVL001"]


def test_evl001_accepts_guarded_and_delegating_entries():
    result = _lint("""
        class Head(Module):
            def predict(self, x):
                with eval_mode(self), no_grad():
                    return self.forward(x)

            def evaluate(self, xs):
                return [self.predict(x) for x in xs]
    """)
    assert result.ok


def test_evl001_ignores_non_module_classes():
    result = _lint("""
        class LookupBaseline:
            def predict(self, x):
                return x
    """)
    assert result.ok


def test_evl001_resolves_in_file_base_chain():
    result = _lint("""
        class Base(Module):
            pass

        class Head(Base):
            def rank(self, xs):
                return sorted(xs)
    """)
    assert _rule_ids(result) == ["EVL001"]


def test_evl001_delegation_is_transitive():
    result = _lint("""
        class Head(Module):
            def rank(self, x):
                with eval_mode(self), no_grad():
                    return self.forward(x)

            def evaluate(self, xs):
                return [self.rank(x) for x in xs]

            def evaluate_summary(self, xs):
                return sum(self.evaluate(xs))
    """)
    assert result.ok


# -- API001 -----------------------------------------------------------------

def test_api001_flags_deprecated_shim_calls():
    result = _lint("""
        def report(head, instances, generator):
            return head.evaluate_map(instances, generator)
    """)
    assert _rule_ids(result) == ["API001"]


def test_api001_flags_precision_shim_and_learning_rate_keyword():
    result = _lint("""
        def run(filler, head, instances, candidates):
            head.finetune(instances, learning_rate=1e-3)
            return filler.evaluate_precision_at(instances, candidates)
    """)
    assert _rule_ids(result) == ["API001", "API001"]


def test_api001_allows_canonical_calls():
    result = _lint("""
        def report(head, instances, generator):
            head.finetune(instances, lr=1e-3)
            return head.evaluate(instances, generator).primary_value
    """)
    assert result.ok


# -- API002 -----------------------------------------------------------------

def test_api002_flags_list_typed_corpus_params():
    result = _lint("""
        from typing import List, Sequence

        def build(corpus: List[Table], extra: Sequence[Table]) -> None:
            pass
    """)
    assert _rule_ids(result) == ["API002", "API002"]


def test_api002_flags_lowercase_list_and_keyword_only():
    result = _lint("""
        def build(*, tables: list[Table] = ()) -> None:
            pass
    """)
    assert _rule_ids(result) == ["API002"]


def test_api002_allows_datasets_iterables_and_other_element_types():
    result = _lint("""
        from typing import Iterable, List

        def build(corpus: Dataset, stream: Iterable[Table],
                  losses: List[float]) -> List[Table]:
            cache: List[Table] = []
            return cache
    """)
    assert result.ok


def test_api002_inactive_outside_repro():
    result = _lint("""
        from typing import List

        def build(corpus: List[Table]) -> None:
            pass
    """, path="tools/example.py")
    assert result.ok


# -- EVL002 -----------------------------------------------------------------

def test_evl002_flags_bare_eval_call():
    result = _lint("""
        def run(model):
            model.eval()
    """)
    assert _rule_ids(result) == ["EVL002"]


def test_evl002_allows_eval_mode_context():
    result = _lint("""
        def run(model, x):
            with eval_mode(model):
                return model(x)
    """)
    assert result.ok


# -- DEF001 -----------------------------------------------------------------

def test_def001_flags_mutable_defaults():
    result = _lint("""
        def f(items=[], table={}, tags=set()):
            return items, table, tags
    """)
    assert _rule_ids(result) == ["DEF001", "DEF001", "DEF001"]


def test_def001_allows_immutable_defaults():
    result = _lint("""
        def f(items=(), name="x", count=0, other=None):
            return items, name, count, other
    """)
    assert result.ok


# -- EXC001 -----------------------------------------------------------------

def test_exc001_flags_bare_except():
    result = _lint("""
        def f():
            try:
                return 1
            except:
                return 0
    """)
    assert _rule_ids(result) == ["EXC001"]


def test_exc001_allows_typed_except():
    result = _lint("""
        def f():
            try:
                return 1
            except ValueError:
                return 0
    """)
    assert result.ok


# -- suppressions / LNT000 / LNT001 -----------------------------------------

def test_suppression_with_reason_whitelists_and_is_counted():
    result = _lint("""
        import numpy as np
        x = np.random.rand(3)  # lint: disable=RNG001(exercising the linter)
    """)
    assert result.ok
    assert len(result.suppressed) == 1
    assert result.suppressed[0].reason == "exercising the linter"


def test_comment_only_suppression_applies_to_next_line():
    result = _lint("""
        import numpy as np
        # lint: disable=RNG001(exercising the linter)
        x = np.random.rand(3)
    """)
    assert result.ok and len(result.suppressed) == 1


def test_suppression_without_reason_is_lnt000():
    # The marker is split so this file's own (line-based) suppression scan
    # does not mistake the test fixture for a real reasonless suppression.
    source = ("import numpy as np\n"
              "x = np.random.rand(3)  # lint: " + "disable=RNG001\n")
    result = lint_source(source, "src/repro/core/example.py")
    assert sorted(_rule_ids(result)) == ["LNT000", "RNG001"]


def test_suppression_for_other_rule_does_not_whitelist():
    result = _lint("""
        import numpy as np
        x = np.random.rand(3)  # lint: disable=CLK001(wrong rule on purpose)
    """)
    assert _rule_ids(result) == ["RNG001"]


def test_syntax_error_is_lnt001():
    result = _lint("def broken(:\n    pass\n")
    assert _rule_ids(result) == ["LNT001"]


# -- OBS002: span / metric name style ---------------------------------------

def test_obs002_flags_bad_literal_names():
    result = _lint("""
        from repro.obs import trace, start_trace, get_registry
        with trace("Serve/Decode"):
            pass
        with start_trace("serve decode"):
            pass
        get_registry().counter("serve.Requests").inc()
        get_registry().histogram("serve..latency").observe(1.0)
    """)
    assert _rule_ids(result) == ["OBS002"] * 4


def test_obs002_allows_canonical_names():
    result = _lint("""
        from repro.obs import trace, start_trace, get_registry
        with trace("pretrain/step/forward"):
            pass
        with start_trace("serve/entity_linking"):
            pass
        registry = get_registry()
        registry.counter("serve.requests").inc()
        registry.gauge("serve.queue_depth").set(1.0)
        registry.timer("serve.latency.entity_linking").time()
        tracer.span("eval/probe_0")
    """)
    assert _rule_ids(result) == []


def test_obs002_checks_fstring_constant_fragments():
    result = _lint("""
        from repro.obs import trace
        with trace(f"serve/{task}"):
            pass
        with trace(f"Serve/{task}"):
            pass
        registry.timer(f"serve.latency.{task}").time()
        registry.timer(f"serve latency {task}").time()
    """)
    assert _rule_ids(result) == ["OBS002", "OBS002"]


def test_obs002_ignores_dynamic_names_and_other_calls():
    result = _lint("""
        from repro.obs import trace
        name = compute_name()
        with trace(name):
            pass
        print("NOT A METRIC")
        timer("Some Free Function")
    """)
    assert _rule_ids(result) == []


def test_obs002_inactive_outside_repro():
    result = _lint("""
        from repro.obs import trace
        with trace("Whatever Style"):
            pass
    """, path="tests/obs/test_example.py")
    assert _rule_ids(result) == []


def test_obs002_suppressible_with_reason():
    result = _lint("""
        from repro.obs import trace
        with trace("Legacy/Name"):  # lint: disable=OBS002(historic dashboard key)
            pass
    """)
    assert _rule_ids(result) == []
    assert [s.violation.rule_id for s in result.suppressed] == ["OBS002"]
    assert result.suppressed[0].reason == "historic dashboard key"
