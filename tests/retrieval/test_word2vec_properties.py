"""Determinism and robustness properties of the Word2Vec substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.word2vec import Word2Vec, Word2VecConfig


def corpus():
    rng = np.random.default_rng(5)
    sentences = []
    for _ in range(60):
        base = ["red", "green", "blue"] if rng.random() < 0.5 else ["cat", "dog", "fox"]
        sentences.append(list(rng.permutation(base)) + [base[0]])
    return sentences


def test_training_is_deterministic():
    a = Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=9)).train(corpus())
    b = Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=9)).train(corpus())
    np.testing.assert_allclose(a.input_vectors, b.input_vectors)


def test_different_seeds_differ():
    a = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=1)).train(corpus())
    b = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=2)).train(corpus())
    assert not np.allclose(a.input_vectors, b.input_vectors)


def test_similarity_symmetric():
    model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=0)).train(corpus())
    assert model.similarity("red", "green") == model.similarity("green", "red")


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["red", "green", "blue", "cat", "dog", "fox"]))
def test_property_self_similarity_is_one(token):
    model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=3)).train(corpus())
    assert model.similarity(token, token) == 1.0 or np.isclose(
        model.similarity(token, token), 1.0)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(["red", "green", "blue", "cat", "dog", "fox"]),
       st.sampled_from(["red", "green", "blue", "cat", "dog", "fox"]))
def test_property_similarity_bounded(a, b):
    model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=3)).train(corpus())
    value = model.similarity(a, b)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


def test_most_similar_excludes_self_and_is_sorted():
    model = Word2Vec(Word2VecConfig(dim=8, epochs=2, seed=0)).train(corpus())
    results = model.most_similar("red", k=4)
    names = [n for n, _ in results]
    scores = [s for _, s in results]
    assert "red" not in names
    assert scores == sorted(scores, reverse=True)
