"""Tests for BM25, tf-idf and Word2Vec substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import BM25Index, TfIdfVectorizer, Word2Vec, Word2VecConfig, cosine_similarity

DOCS = {
    "d1": "list of award recipients national film award",
    "d2": "football clubs in harvmark stadium city",
    "d3": "films directed by famous director award",
    "d4": "albums by the musician discography genre",
}


def test_bm25_relevant_doc_first():
    index = BM25Index(DOCS)
    results = index.search("national film award", k=4)
    assert results[0][0] == "d1"


def test_bm25_scores_positive_and_sorted():
    index = BM25Index(DOCS)
    results = index.search("award", k=4)
    scores = [s for _, s in results]
    assert all(s > 0 for s in scores)
    assert scores == sorted(scores, reverse=True)
    assert {d for d, _ in results} == {"d1", "d3"}


def test_bm25_no_match_returns_empty():
    index = BM25Index(DOCS)
    assert index.search("zzzz qqqq") == []


def test_bm25_rare_term_outweighs_common():
    index = BM25Index(DOCS)
    # "stadium" appears only in d2; "award" in two docs.
    assert index.score("stadium", "d2") > index.score("award", "d1") * 0.5


def test_bm25_unknown_doc_raises():
    index = BM25Index(DOCS)
    with pytest.raises(KeyError):
        index.score("award", "ghost")


def test_tfidf_identical_texts_similarity_one():
    vectorizer = TfIdfVectorizer().fit(DOCS.values())
    a = vectorizer.transform("national film award")
    assert cosine_similarity(a, a) == pytest.approx(1.0)


def test_tfidf_unrelated_texts_low_similarity():
    vectorizer = TfIdfVectorizer().fit(DOCS.values())
    a = vectorizer.transform("national film award recipients")
    b = vectorizer.transform("football clubs stadium")
    assert cosine_similarity(a, b) < 0.2


def test_tfidf_requires_fit():
    with pytest.raises(RuntimeError):
        TfIdfVectorizer().transform("anything")


def test_tfidf_oov_gives_zero_vector():
    vectorizer = TfIdfVectorizer().fit(DOCS.values())
    v = vectorizer.transform("zzzz qqqq")
    assert np.allclose(v, 0)
    assert cosine_similarity(v, v) == 0.0


def test_cosine_zero_vectors():
    assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


def make_sentences():
    # Two clean clusters: (a b c) and (x y z) never co-occur.
    rng = np.random.default_rng(0)
    sentences = []
    for _ in range(150):
        if rng.random() < 0.5:
            sentences.append(["a", "b", "c", "a", "b"])
        else:
            sentences.append(["x", "y", "z", "x", "y"])
    return sentences


def test_word2vec_cluster_structure():
    model = Word2Vec(Word2VecConfig(dim=16, epochs=3, seed=1)).train(make_sentences())
    assert model.similarity("a", "b") > model.similarity("a", "x")
    assert model.similarity("x", "y") > model.similarity("y", "c")


def test_word2vec_most_similar():
    model = Word2Vec(Word2VecConfig(dim=16, epochs=3, seed=1)).train(make_sentences())
    neighbors = [t for t, _ in model.most_similar("a", k=2)]
    assert set(neighbors) <= {"b", "c"}


def test_word2vec_oov():
    model = Word2Vec(Word2VecConfig(dim=8, epochs=1)).train(make_sentences())
    assert model.vector("missing") is None
    assert model.similarity("missing", "a") == 0.0
    assert model.most_similar("missing") == []


def test_word2vec_min_count_filters():
    sentences = [["common", "common", "rare"]] + [["common", "other"]] * 5
    model = Word2Vec(Word2VecConfig(min_count=2, epochs=1)).train(sentences)
    assert "common" in model
    assert "rare" not in model


def test_word2vec_empty_raises():
    with pytest.raises(ValueError):
        Word2Vec(Word2VecConfig(min_count=5)).train([["a"]])


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from(["award", "film", "club"]), min_size=1, max_size=6))
def test_property_bm25_score_nonnegative(query_terms):
    index = BM25Index(DOCS)
    for doc_id in DOCS:
        assert index.score(" ".join(query_terms), doc_id) >= 0.0


@settings(max_examples=20, deadline=None)
@given(st.text(alphabet="abcdefg ", min_size=0, max_size=30))
def test_property_tfidf_norm_at_most_one(text):
    vectorizer = TfIdfVectorizer().fit(DOCS.values())
    v = vectorizer.transform(text)
    assert np.linalg.norm(v) <= 1.0 + 1e-9
