"""Shared fixtures: a small synthetic world, corpus, and pipeline context.

Everything heavy is session-scoped so the suite builds the world once.
"""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.context import TURLContext, build_context
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.kb.generator import WorldConfig, generate_world


@pytest.fixture(scope="session")
def kb():
    return generate_world(WorldConfig(seed=1))


@pytest.fixture(scope="session")
def corpus(kb):
    return filter_relational(build_corpus(kb, SynthesisConfig(seed=2, n_tables=400)))


@pytest.fixture(scope="session")
def splits(corpus):
    return partition_corpus(corpus, seed=3)


@pytest.fixture(scope="session")
def small_config():
    return TURLConfig(num_layers=2, dim=32, intermediate_dim=64, num_heads=2)


@pytest.fixture(scope="session")
def context(small_config) -> TURLContext:
    """A compact pipeline with a short pre-training run."""
    return build_context(
        world_config=WorldConfig(seed=1),
        synthesis_config=SynthesisConfig(seed=2, n_tables=300),
        model_config=small_config,
        pretrain_epochs=2,
        vocab_size=2000,
        seed=0,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(123)
