"""Property-based tests for the name factories and world invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb import names


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_person_names_are_two_capitalized_words(seed):
    rng = np.random.default_rng(seed)
    name = names.person_name(rng)
    parts = name.split()
    assert len(parts) == 2
    assert all(p[0].isupper() for p in parts)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_person_aliases_derive_from_name(seed):
    rng = np.random.default_rng(seed)
    name = names.person_name(rng)
    aliases = names.person_aliases(rng, name)
    first, last = name.split()
    assert last in aliases
    assert f"{first[0]}. {last}" in aliases


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_film_titles_nonempty_and_titlecased(seed):
    rng = np.random.default_rng(seed)
    title = names.film_title(rng)
    assert title
    assert title == " ".join(w.capitalize() for w in title.split())


def test_film_aliases_strip_the():
    assert names.film_aliases("The Silent River") == ["Silent River"]
    assert names.film_aliases("Crimson Garden") == []


def test_club_aliases():
    aliases = names.club_aliases("Ashton United")
    assert "Ashton" in aliases
    assert "AU" in aliases


@pytest.mark.parametrize("n,expected", [
    (1, "1st"), (2, "2nd"), (3, "3rd"), (4, "4th"),
    (11, "11th"), (12, "12th"), (13, "13th"),
    (21, "21st"), (102, "102nd"),
])
def test_ordinal(n, expected):
    assert names.ordinal(n) == expected


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_language_derives_from_country(seed):
    rng = np.random.default_rng(seed)
    country = names.country_name(rng)
    language = names.language_name(rng, country)
    assert language
    # Shares a root prefix with the country.
    assert language.lower()[:3] == country.lower()[:3]


def test_ceremony_name_embeds_ordinal():
    assert names.ceremony_name(15, "National Film Awards") == "15th National Film Awards"
