"""Tests for the KB store, schema, world generator and lookup service."""

import numpy as np
import pytest

from repro.kb import Entity, KnowledgeBase, LookupService, RELATIONS, WorldConfig, generate_world
from repro.kb.lookup import dice_similarity
from repro.kb.schema import ancestors_of, expand_types, relations_with_domain


def make_kb():
    kb = KnowledgeBase()
    kb.add_entity(Entity("p1", "Ana Roth", ["director"], aliases=["Roth"]))
    kb.add_entity(Entity("c1", "Ashton", ["citytown"]))
    kb.add_entity(Entity("f1", "The Silent River", ["film"]))
    kb.add_fact("p1", "person.birthplace", "c1")
    kb.add_fact("f1", "film.director", "p1")
    return kb


def test_schema_ancestors():
    assert ancestors_of("actor") == ["actor", "person"]
    assert ancestors_of("person") == ["person"]
    with pytest.raises(KeyError):
        ancestors_of("dragon")


def test_schema_expand_types_dedups():
    assert expand_types(["actor", "director"]) == ["actor", "person", "director"]


def test_relations_with_domain_inherits():
    names = {r.name for r in relations_with_domain("pro_athlete")}
    assert "athlete.club" in names
    assert "person.birthplace" in names  # inherited from person
    assert "film.director" not in names


def test_kb_fact_indexes():
    kb = make_kb()
    assert kb.objects_of("p1", "person.birthplace") == ["c1"]
    assert kb.subjects_of("p1", "film.director") == ["f1"]
    assert kb.relations_between("f1", "p1") == ["film.director"]
    assert kb.has_fact("f1", "film.director", "p1")
    assert not kb.has_fact("f1", "film.director", "c1")


def test_kb_entities_of_type_includes_ancestors():
    kb = make_kb()
    assert "p1" in kb.entities_of_type("person")
    assert "p1" in kb.entities_of_type("director")
    assert "p1" not in kb.entities_of_type("actor")


def test_kb_rejects_duplicates_and_unknowns():
    kb = make_kb()
    with pytest.raises(ValueError):
        kb.add_entity(Entity("p1", "Dup", ["person"]))
    with pytest.raises(KeyError):
        kb.add_fact("p1", "not.a.relation", "c1")
    with pytest.raises(KeyError):
        kb.add_fact("ghost", "person.birthplace", "c1")


def test_kb_duplicate_fact_is_idempotent():
    kb = make_kb()
    n = len(kb.facts)
    kb.add_fact("p1", "person.birthplace", "c1")
    assert len(kb.facts) == n
    assert kb.objects_of("p1", "person.birthplace") == ["c1"]


def test_kb_roundtrip(tmp_path):
    kb = make_kb()
    path = str(tmp_path / "kb.json")
    kb.save(path)
    loaded = KnowledgeBase.load(path)
    assert len(loaded) == len(kb)
    assert loaded.get("p1").aliases == ["Roth"]
    assert loaded.has_fact("f1", "film.director", "p1")


def test_generate_world_deterministic():
    kb1 = generate_world(WorldConfig(seed=5))
    kb2 = generate_world(WorldConfig(seed=5))
    assert len(kb1) == len(kb2)
    assert {e.name for e in kb1.entities.values()} == {e.name for e in kb2.entities.values()}
    assert kb1.to_dict() == kb2.to_dict()


def test_generate_world_coherence(kb):
    """Structural invariants: every film has a director whose nationality's
    language matches the film's language; ceremony winners direct the
    winning films."""
    for film_id in kb.entities_of_type("film"):
        directors = kb.objects_of(film_id, "film.director")
        assert len(directors) == 1
        languages = kb.objects_of(film_id, "film.language")
        assert len(languages) == 1
    for ceremony_id in kb.entities_of_type("award_ceremony"):
        winners = kb.objects_of(ceremony_id, "ceremony.winner")
        films = kb.objects_of(ceremony_id, "ceremony.best_film")
        if winners and films:
            assert kb.has_fact(films[0], "film.director", winners[0])


def test_generate_world_everyone_has_birthplace(kb):
    for person_id in kb.entities_of_type("person"):
        assert kb.objects_of(person_id, "person.birthplace")
        assert kb.objects_of(person_id, "person.nationality")


def test_world_descriptions_nonempty(kb):
    missing = [e.entity_id for e in kb.entities.values() if not e.description]
    assert not missing


def test_world_scaled():
    base = WorldConfig(seed=0)
    double = base.scaled(2.0)
    assert double.n_films == 2 * base.n_films
    assert double.n_countries == 2 * base.n_countries


def test_dice_similarity_bounds():
    assert dice_similarity("abc", "abc") == 1.0
    assert dice_similarity("abc", "xyz") == 0.0
    assert 0 < dice_similarity("satyajit", "satyajif") < 1


def test_lookup_exact_match_first(kb):
    service = LookupService(kb)
    entity = kb.get(kb.entities_of_type("director")[0])
    results = service.lookup(entity.name, k=10)
    assert results
    top_names = [kb.get(r.entity_id).name for r in results[:3]]
    assert entity.name in top_names


def test_lookup_alias_finds_entity(kb):
    service = LookupService(kb)
    director_id = kb.entities_of_type("director")[0]
    alias = kb.get(director_id).aliases[0]
    results = service.lookup(alias, k=50)
    assert director_id in {r.entity_id for r in results}


def test_lookup_handles_typos(kb):
    service = LookupService(kb)
    entity = kb.get(kb.entities_of_type("film")[0])
    name = entity.name
    typo = name[:-2] + name[-1]  # drop a char near the end
    results = service.lookup(typo, k=50)
    assert entity.entity_id in {r.entity_id for r in results}


def test_lookup_empty_and_garbage():
    kb = make_kb()
    service = LookupService(kb)
    assert service.lookup("") == []
    assert service.top1("qqqqzzzz") in (None, "p1", "c1", "f1")  # may be empty


def test_lookup_scores_sorted(kb):
    service = LookupService(kb)
    results = service.lookup("Roth", k=20)
    scores = [r.score for r in results]
    assert scores == sorted(scores, reverse=True)


def test_lookup_k_cap(kb):
    service = LookupService(kb)
    assert len(service.lookup("ashton", k=5)) <= 5
