"""Serving-layer observability: X-Request-Id correlation, Prometheus
exposition, per-request journal events, and the acceptance guarantee that
one traced request's spans cover >= 95% of its wall time."""

import threading

import pytest

from repro.obs import EVENT_REQUEST, EVENT_TRACE, RunJournal, read_journal
from repro.serve import Client
from repro.serve.predictor import Predictor


@pytest.fixture(scope="module")
def client(predictor):
    with Client(predictor, max_batch_size=4, max_wait_ms=5.0) as active:
        yield active


@pytest.fixture()
def journal_client(bundle, tmp_path):
    """A server whose predictor streams requests/traces to a journal.

    Shares the bundle's adapters and encode cache so the session-scoped
    predictor is left exactly as it was."""
    journal = RunJournal(str(tmp_path / "serve.jsonl"))
    predictor = Predictor(list(bundle.predictor.adapters.values()),
                          cache=bundle.predictor.cache, journal=journal)
    with Client(predictor, max_batch_size=4, max_wait_ms=5.0) as active:
        yield active, journal
    journal.close()


def _linking_payload(bundle):
    adapter = bundle.predictor.adapter_for("entity_linking")
    return adapter.encode_instance(bundle.examples["entity_linking"][0])


# -- X-Request-Id correlation -----------------------------------------------

def test_request_id_header_on_success(bundle, client):
    status, body, headers = client.post_with_headers(
        "entity_linking", {"instance": _linking_payload(bundle)})
    assert status == 200
    assert headers.get("X-Request-Id")
    assert body["task"] == "entity_linking"


def test_request_id_header_on_error_paths(client):
    status, _, headers = client.post_with_headers("no_such_task",
                                                  {"instance": {}})
    assert status == 404 and headers.get("X-Request-Id")
    status, _, headers = client.post_with_headers("entity_linking",
                                                  {"wrong_key": []})
    assert status == 400 and headers.get("X-Request-Id")


def test_request_ids_are_unique_per_request(bundle, client):
    payload = {"instance": _linking_payload(bundle)}
    ids = {client.post_with_headers("entity_linking", payload)[2]
           ["X-Request-Id"] for _ in range(3)}
    assert len(ids) == 3


# -- Prometheus exposition ---------------------------------------------------

def test_prometheus_endpoint_content_type_and_families(bundle, client):
    client.predict("entity_linking", _linking_payload(bundle))
    text, content_type = client.metrics_prometheus()
    assert content_type == "text/plain; version=0.0.4"
    assert "# TYPE serve_requests_entity_linking counter\n" in text
    assert "# TYPE serve_latency_entity_linking summary\n" in text
    assert 'serve_latency_entity_linking{quantile="0.99"}' in text
    assert "# TYPE serve_encode_cache_enabled gauge\n" in text
    assert "serve_encode_cache_enabled 1\n" in text
    # JSON /metrics still works alongside the prometheus view
    assert "metrics" in client.metrics()


# -- 500s carry the trace id -------------------------------------------------

class _ExplodingAdapter:
    task_name = "entity_linking"

    class _Model:
        pass  # predictor installs the encode cache onto this attribute bag

    def __init__(self):
        self._model = self._Model()

    @property
    def model(self):
        return self._model

    def decode_instance(self, payload):
        return payload

    def predict_batch(self, instances):
        raise RuntimeError("adapter exploded")


def test_500_body_echoes_trace_id(tmp_path):
    journal = RunJournal(str(tmp_path / "boom.jsonl"))
    predictor = Predictor([_ExplodingAdapter()], enable_cache=False,
                          journal=journal)
    with Client(predictor, max_batch_size=2, max_wait_ms=1.0) as client:
        status, body, headers = client.post_with_headers(
            "entity_linking", {"instance": {"row": 0}})
    journal.close()
    assert status == 500
    assert "prediction failed" in body["error"]
    assert body["trace_id"] == headers["X-Request-Id"]
    events = read_journal(journal.path)
    request_events = [e for e in events if e["event"] == EVENT_REQUEST]
    assert len(request_events) == 1
    assert request_events[0]["status"] == 500
    assert request_events[0]["trace_id"] == body["trace_id"]


# -- journal events per request ----------------------------------------------

def test_each_request_journals_summary_and_trace(bundle, journal_client):
    client, journal = journal_client
    payload = _linking_payload(bundle)
    client.predict("entity_linking", payload)
    status, _ = client.post("no_such_task", {"instance": {}})
    assert status == 404
    # The request summary is journaled AFTER the response bytes reach the
    # client (it records the final status and wall time), so give the
    # handler thread a moment to finish writing.
    pause = threading.Event()
    for _ in range(200):
        events = read_journal(journal.path)
        requests = [e for e in events if e["event"] == EVENT_REQUEST]
        if len(requests) >= 2:
            break
        pause.wait(0.01)
    traces = [e for e in events if e["event"] == EVENT_TRACE]
    assert [(e["task"], e["status"], e["instances"]) for e in requests] == [
        ("entity_linking", 200, 1), ("no_such_task", 404, 0)]
    for event in requests:
        assert event["seconds"] > 0
        assert event["trace_id"]
    assert [t["name"] for t in traces] == ["serve/entity_linking",
                                           "serve/no_such_task"]
    # request summaries and traces correlate through the trace id
    assert {e["trace_id"] for e in requests} == \
        {t["trace_id"] for t in traces}


# -- acceptance: spans cover >= 95% of the request wall time ------------------

def _root_coverage(trace_event):
    intervals = sorted(
        (span["start"], span["end"]) for span in trace_event["spans"]
        if span["parent"] == -1)
    covered = cursor = 0.0
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered / trace_event["wall_seconds"]


def test_entity_linking_trace_covers_request_wall_time(bundle, journal_client):
    client, journal = journal_client
    client.predict("entity_linking", _linking_payload(bundle))
    (trace_event,) = [e for e in read_journal(journal.path)
                      if e["event"] == EVENT_TRACE]
    spans = trace_event["spans"]
    by_name = {span["name"]: span for span in spans}
    assert {"serve/decode", "serve/wait", "serve/respond",
            "serve/queue", "serve/predict"} <= set(by_name)
    wait_index = spans.index(by_name["serve/wait"])
    assert by_name["serve/queue"]["parent"] == wait_index
    assert by_name["serve/predict"]["parent"] == wait_index
    assert _root_coverage(trace_event) >= 0.95
