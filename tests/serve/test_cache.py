"""EncodeCache behavior: keying, hit/miss accounting, LRU eviction, and
the model-side gating that keeps cached activations out of training.
"""

import numpy as np
import pytest

from repro.core.batching import encode_table
from repro.nn import Tensor, eval_mode, no_grad
from repro.serve import EncodeCache


def _batch(seed, n=6):
    rng = np.random.default_rng(seed)
    return {
        "token_ids": rng.integers(0, 50, size=(1, n)),
        "entity_ids": rng.integers(0, 20, size=(1, n)),
        "visibility": rng.integers(0, 2, size=(1, 2 * n, 2 * n)).astype(bool),
    }


def _value(seed, n=4):
    rng = np.random.default_rng(seed)
    return (Tensor(rng.normal(size=(1, n, 8))), Tensor(rng.normal(size=(1, n, 8))))


def test_keying_is_content_based():
    batch = _batch(0)
    same = {name: value.copy() for name, value in batch.items()}
    assert EncodeCache.key_for(batch, True) == EncodeCache.key_for(same, True)
    assert EncodeCache.key_for(batch, True) != EncodeCache.key_for(batch, False)
    perturbed = {name: value.copy() for name, value in batch.items()}
    perturbed["entity_ids"][0, 0] += 1
    assert EncodeCache.key_for(batch, True) != EncodeCache.key_for(perturbed, True)


def test_hit_miss_accounting_and_identity():
    cache = EncodeCache(capacity=8)
    key = cache.key_for(_batch(0), True)
    assert cache.get(key) is None
    value = _value(0)
    cache.put(key, value)
    hit = cache.get(key)
    assert hit is not None
    assert hit[0] is value[0] and hit[1] is value[1]
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1 and stats["hit_rate"] == 0.5


def test_cached_tensors_are_read_only():
    cache = EncodeCache(capacity=2)
    value = _value(1)
    cache.put(b"k", value)
    with pytest.raises(ValueError):
        value[0].data[...] = 0.0  # lint: disable=TEN001(asserting the read-only flag on cached activations)


def test_lru_eviction_keeps_recently_used():
    cache = EncodeCache(capacity=2)
    cache.put(b"a", _value(1))
    cache.put(b"b", _value(2))
    assert cache.get(b"a") is not None  # refresh "a"; "b" is now oldest
    cache.put(b"c", _value(3))
    assert len(cache) == 2
    assert cache.get(b"b") is None
    assert cache.get(b"a") is not None and cache.get(b"c") is not None


def test_clear_resets_entries_and_counters():
    cache = EncodeCache(capacity=2)
    cache.put(b"a", _value(1))
    cache.get(b"a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0


def test_model_encode_uses_cache_only_in_inference_mode(context):
    model = context.clone_model()
    table = context.splits.test.tables[0]
    _, batch = encode_table(context.linearizer, table)
    model.encode_cache = EncodeCache(capacity=4)

    with eval_mode(model), no_grad():
        first = model.encode(batch)
        second = model.encode(batch)
    assert second[0] is first[0] and second[1] is first[1]
    assert model.encode_cache.stats() == {
        "hits": 1, "misses": 1, "entries": 1, "capacity": 4, "hit_rate": 0.5}
    np.testing.assert_array_equal(first[0].data, second[0].data)

    # Training mode (or live gradients) must bypass the cache entirely.
    stats_before = model.encode_cache.stats()
    trained = model.encode(batch)  # default mode: training, grads on
    assert trained[0] is not first[0]
    assert model.encode_cache.stats() == stats_before
    with eval_mode(model):
        graded = model.encode(batch)  # eval mode but grads still enabled
    assert graded[0] is not first[0]
    assert model.encode_cache.stats() == stats_before


def test_cached_encode_is_bit_identical_to_uncached(context):
    model = context.clone_model()
    table = context.splits.test.tables[1]
    _, batch = encode_table(context.linearizer, table)
    with eval_mode(model), no_grad():
        plain = model.encode(batch)
        model.encode_cache = EncodeCache(capacity=4)
        cached = model.encode(batch)
    np.testing.assert_array_equal(plain[0].data, cached[0].data)
    np.testing.assert_array_equal(plain[1].data, cached[1].data)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EncodeCache(capacity=0)
