"""Serving fixtures: one six-task bundle built from the session context."""

import pytest

from repro.obs import disable_metrics, enable_metrics
from repro.serve import build_serving_bundle


@pytest.fixture(scope="package", autouse=True)
def _recording_metrics():
    """Serve tests assert on /metrics; record for the package, then restore
    the no-op default so the rest of the suite stays instrument-free."""
    registry = enable_metrics()
    yield registry
    disable_metrics()


@pytest.fixture(scope="session")
def bundle(context):
    """All six adapters over one cloned model, shared encode cache on."""
    return build_serving_bundle(context.clone_model(), context.linearizer,
                                context.kb, context.splits, seed=0,
                                n_examples=4)


@pytest.fixture(scope="session")
def predictor(bundle):
    return bundle.predictor
