"""HTTP round-trips through the in-process Client: every task answers over
a real loopback socket, error paths return typed statuses, /metrics
reflects traffic, and concurrent clients get deterministic answers — for
both the single-worker tier and the content-routed fleet tier.
"""

import threading

import pytest

from repro.serve import Client, PredictorFleet

TASKS = ("entity_linking", "column_type", "relation_extraction",
         "row_population", "cell_filling", "schema_augmentation")


@pytest.fixture(scope="module")
def client(predictor):
    with Client(predictor, max_batch_size=4, max_wait_ms=5.0) as active:
        yield active


@pytest.fixture(scope="module")
def fleet_client(bundle):
    fleet = PredictorFleet(bundle.predictor, workers=2, max_queue=16)
    with Client(fleet=fleet) as active:
        yield active


def test_healthz_reports_all_tasks(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert sorted(health["tasks"]) == sorted(TASKS)


@pytest.mark.parametrize("task", TASKS)
def test_round_trip_matches_in_process_prediction(bundle, client, task):
    adapter = bundle.predictor.adapter_for(task)
    instance = bundle.examples[task][0]
    expected = adapter.predict_one(instance)
    answer = client.predict(task, adapter.encode_instance(instance))
    assert answer == {"task": task, "output": expected.output}


def test_batch_request_round_trips(bundle, client):
    adapter = bundle.predictor.adapter_for("column_type")
    instances = bundle.examples["column_type"][:3]
    payloads = [adapter.encode_instance(instance) for instance in instances]
    answers = client.predict_batch("column_type", payloads)
    expected = adapter.predict_batch(instances)
    assert [a["output"] for a in answers] == [p.output for p in expected]


def test_unknown_task_is_404(client):
    status, body = client.post("no_such_task", {"instance": {}})
    assert status == 404
    assert sorted(body["tasks"]) == sorted(TASKS)


def test_malformed_payload_is_400(client):
    status, body = client.post("entity_linking", {"instance": {"row": 0}})
    assert status == 400 and "bad request" in body["error"]
    status, body = client.post("entity_linking", {"wrong_key": []})
    assert status == 400
    status, body = client.post("entity_linking", {"instances": "not-a-list"})
    assert status == 400


def test_metrics_expose_requests_latency_and_cache(bundle, client):
    adapter = bundle.predictor.adapter_for("schema_augmentation")
    payload = adapter.encode_instance(bundle.examples["schema_augmentation"][0])
    client.predict("schema_augmentation", payload)
    client.predict("schema_augmentation", payload)  # repeat: cache material
    metrics = client.metrics()
    names = metrics["metrics"]
    assert names["serve.requests.schema_augmentation"]["value"] >= 2
    assert names["serve.latency.schema_augmentation"]["count"] >= 2
    assert metrics["encode_cache"]["enabled"] == 1.0
    assert metrics["encode_cache"]["hits"] > 0
    assert 0.0 < metrics["encode_cache"]["hit_rate"] <= 1.0


def test_fleet_healthz_lists_workers(fleet_client):
    health = fleet_client.healthz()
    assert sorted(health["tasks"]) == sorted(TASKS)
    assert health["workers"] == ["worker0", "worker1"]


@pytest.mark.parametrize("task", TASKS)
def test_fleet_round_trip_matches_single_worker(bundle, fleet_client, task):
    adapter = bundle.predictor.adapter_for(task)
    instance = bundle.examples[task][0]
    expected = adapter.predict_one(instance)
    answer = fleet_client.predict(task, adapter.encode_instance(instance))
    assert answer == {"task": task, "output": expected.output}


def test_fleet_error_statuses(fleet_client):
    status, body = fleet_client.post("no_such_task", {"instance": {}})
    assert status == 404
    status, body = fleet_client.post("entity_linking", {"wrong_key": []})
    assert status == 400
    status, body = fleet_client.post("entity_linking",
                                     {"instance": {"row": 0}})
    assert status == 400 and "bad request" in body["error"]


def test_fleet_metrics_expose_per_worker_caches(bundle, fleet_client):
    adapter = bundle.predictor.adapter_for("schema_augmentation")
    payload = adapter.encode_instance(
        bundle.examples["schema_augmentation"][0])
    fleet_client.predict("schema_augmentation", payload)
    fleet_client.predict("schema_augmentation", payload)  # repeat: a hit
    metrics = fleet_client.metrics()
    cache = metrics["encode_cache"]
    assert sorted(cache["per_worker"]) == ["worker0", "worker1"]
    assert cache["hits"] >= 1
    assert cache["hits"] == sum(s["hits"]
                                for s in cache["per_worker"].values())
    text, content_type = fleet_client.metrics_prometheus()
    assert content_type.startswith("text/plain")
    assert "serve_worker0_cache_hit_rate" in text
    assert "serve_worker1_cache_hit_rate" in text
    assert "serve_encode_cache_hit_rate" in text


def test_fleet_draining_returns_503_and_resume_recovers(bundle,
                                                        fleet_client):
    adapter = bundle.predictor.adapter_for("schema_augmentation")
    payload = adapter.encode_instance(
        bundle.examples["schema_augmentation"][0])
    fleet = fleet_client.server.fleet
    assert fleet.drain(timeout=10)
    status, body = fleet_client.post("schema_augmentation",
                                     {"instance": payload})
    assert status == 503
    assert body["error_class"] == "FleetUnavailable"
    fleet.resume()
    assert fleet_client.predict("schema_augmentation", payload)


def test_concurrent_requests_are_deterministic(bundle, client):
    """Hammer the server from threads; every answer must equal the serial
    single-threaded prediction for its instance."""
    adapter = bundle.predictor.adapter_for("entity_linking")
    instances = bundle.examples["entity_linking"]
    expected = [p.output for p in adapter.predict_batch(instances)]
    payloads = [adapter.encode_instance(instance) for instance in instances]

    answers = {}
    def worker(i):
        answers[i] = client.predict("entity_linking",
                                    payloads[i % len(payloads)])["output"]

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert answers == {i: expected[i % len(expected)] for i in range(12)}
