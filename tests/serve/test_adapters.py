"""Adapter parity: the uniform surface is bit-identical to the legacy
entry points, for every one of the six tasks, and the JSON codecs
round-trip real instances losslessly.
"""

import json

import pytest

TASKS = ("entity_linking", "column_type", "relation_extraction",
         "row_population", "cell_filling", "schema_augmentation")


def _legacy_outputs(adapter, instances):
    """Call the wrapped head exactly as pre-serve code would."""
    task = adapter.task_name
    if task == "entity_linking":
        return adapter.head.predict(instances)
    if task == "column_type":
        return [sorted(types) for types in
                adapter.head.predict(instances, adapter.dataset)]
    if task == "relation_extraction":
        return [sorted(relations) for relations in
                adapter.head.predict(instances, adapter.dataset)]
    if task == "row_population":
        return [adapter.head.rank(instance,
                                  adapter.generator.candidates_for(instance))
                for instance in instances]
    if task == "cell_filling":
        outputs = []
        for instance in instances:
            candidates = [c for c, _ in adapter.candidate_finder.candidates_for(
                instance.subject_id, instance.object_header)]
            outputs.append(adapter.head.rank(instance, candidates))
        return outputs
    if task == "schema_augmentation":
        return [adapter.head.rank(instance) for instance in instances]
    raise AssertionError(f"unknown task {task}")


@pytest.mark.parametrize("task", TASKS)
def test_predict_batch_matches_legacy_entry_point(bundle, task):
    adapter = bundle.predictor.adapter_for(task)
    instances = bundle.examples[task]
    assert instances, f"no example instances for {task}"
    served = [p.output for p in adapter.predict_batch(instances)]
    assert served == _legacy_outputs(adapter, instances)


@pytest.mark.parametrize("task", TASKS)
def test_predict_one_is_the_batch_special_case(bundle, task):
    adapter = bundle.predictor.adapter_for(task)
    instance = bundle.examples[task][0]
    one = adapter.predict_one(instance)
    assert one.task == task
    assert one.output == adapter.predict_batch([instance])[0].output


@pytest.mark.parametrize("task", TASKS)
def test_instance_codec_round_trips_through_json(bundle, task):
    adapter = bundle.predictor.adapter_for(task)
    instance = bundle.examples[task][0]
    payload = json.loads(json.dumps(adapter.encode_instance(instance)))
    assert adapter.decode_instance(payload) == instance


@pytest.mark.parametrize("task", TASKS)
def test_prediction_payload_is_json_safe(bundle, task):
    adapter = bundle.predictor.adapter_for(task)
    prediction = adapter.predict_one(bundle.examples[task][0])
    payload = adapter.encode_prediction(prediction)
    assert json.loads(json.dumps(payload)) == payload
    assert payload["task"] == task


def test_predictor_dispatch_and_unknown_task(bundle, predictor):
    instance = bundle.examples["schema_augmentation"][0]
    direct = predictor.adapter_for("schema_augmentation").predict_one(instance)
    routed = predictor.predict("schema_augmentation", instance)
    assert routed.output == direct.output
    with pytest.raises(KeyError):
        predictor.adapter_for("no_such_task")


def test_predictor_serves_all_six_tasks(predictor):
    assert predictor.tasks == sorted(TASKS)
