"""MicroBatcher semantics against a stub predictor: flush on size, flush
on deadline, per-task grouping, error propagation, and a graceful close.
The stub records every batch it receives, so the tests assert on actual
flush boundaries rather than timing.
"""

import threading

import pytest

from repro.serve import MicroBatcher


class StubPredictor:
    """Records batches; optionally blocks until released or raises."""

    def __init__(self, error=None):
        self.batches = []
        self.error = error
        self.release = threading.Event()
        self.release.set()

    def predict_batch(self, task, instances):
        self.release.wait(timeout=10)
        if self.error is not None:
            raise self.error
        self.batches.append((task, list(instances)))
        return [f"{task}:{instance}" for instance in instances]


def test_flush_on_batch_size():
    stub = StubPredictor()
    stub.release.clear()  # hold the worker so submissions pile up
    with MicroBatcher(stub, max_batch_size=3, max_wait_ms=60_000) as batcher:
        futures = [batcher.submit("t", i) for i in range(3)]
        stub.release.set()
        results = [future.result(timeout=10) for future in futures]
    assert results == ["t:0", "t:1", "t:2"]
    assert stub.batches == [("t", [0, 1, 2])]  # one flush, well before the deadline


def test_flush_on_deadline_with_partial_batch():
    stub = StubPredictor()
    with MicroBatcher(stub, max_batch_size=100, max_wait_ms=20) as batcher:
        future = batcher.submit("t", 7)
        assert future.result(timeout=10) == "t:7"  # deadline, not size, fired
    assert stub.batches == [("t", [7])]


def test_batches_group_by_task_preserving_order():
    stub = StubPredictor()
    stub.release.clear()
    with MicroBatcher(stub, max_batch_size=4, max_wait_ms=10) as batcher:
        futures = [batcher.submit(task, i) for i, task in
                   enumerate(["a", "b", "a", "b"])]
        stub.release.set()
        results = [future.result(timeout=10) for future in futures]
    assert results == ["a:0", "b:1", "a:2", "b:3"]
    # Every flushed batch is single-task, and per-task order is preserved.
    flushed = {}
    for task, instances in stub.batches:
        flushed.setdefault(task, []).extend(instances)
    assert flushed == {"a": [0, 2], "b": [1, 3]}


def test_oversized_burst_splits_into_max_size_batches():
    stub = StubPredictor()
    stub.release.clear()
    with MicroBatcher(stub, max_batch_size=2, max_wait_ms=200) as batcher:
        futures = [batcher.submit("t", i) for i in range(5)]
        stub.release.set()
        assert [f.result(timeout=10) for f in futures] == \
            [f"t:{i}" for i in range(5)]
    assert all(len(instances) <= 2 for _, instances in stub.batches)
    assert sum(len(instances) for _, instances in stub.batches) == 5
    assert [i for _, batch in stub.batches for i in batch] == list(range(5))


def test_prediction_errors_propagate_to_every_future():
    stub = StubPredictor(error=RuntimeError("boom"))
    stub.release.clear()
    with MicroBatcher(stub, max_batch_size=2, max_wait_ms=60_000) as batcher:
        futures = [batcher.submit("t", i) for i in range(2)]
        stub.release.set()
        for future in futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10)


def test_close_flushes_pending_and_rejects_new_work():
    stub = StubPredictor()
    batcher = MicroBatcher(stub, max_batch_size=100, max_wait_ms=60_000)
    future = batcher.submit("t", 1)
    batcher.close()  # deadline far away: close itself must flush
    assert future.result(timeout=10) == "t:1"
    with pytest.raises(RuntimeError):
        batcher.submit("t", 2)
    batcher.close()  # idempotent


def test_concurrent_submitters_all_resolve():
    stub = StubPredictor()
    results = {}

    def worker(i):
        results[i] = batcher.predict("t", i)

    with MicroBatcher(stub, max_batch_size=4, max_wait_ms=5) as batcher:
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert results == {i: f"t:{i}" for i in range(8)}
    assert sum(len(instances) for _, instances in stub.batches) == 8
