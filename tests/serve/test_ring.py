"""Property tests for the consistent-hash ring behind fleet routing.

Seeded random key sets drive three properties: load balance (max/mean per
worker bounded), determinism (same key always routes to the same worker),
and minimal disruption (adding/removing one worker remaps a bounded
fraction of the keyspace).
"""

import numpy as np
import pytest

from repro.serve import DEFAULT_REPLICAS, HashRing, route_key_for


def _random_keys(seed: int, n: int) -> list:
    rng = np.random.default_rng(seed)
    return [rng.bytes(16) for _ in range(n)]


# -- determinism -------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_same_key_routes_to_same_worker(seed):
    ring = HashRing([f"worker{i}" for i in range(4)])
    for key in _random_keys(seed, 200):
        assert ring.route(key) == ring.route(key)


def test_routing_is_reproducible_across_ring_instances():
    workers = [f"worker{i}" for i in range(5)]
    first, second = HashRing(workers), HashRing(workers)
    for key in _random_keys(7, 500):
        assert first.route(key) == second.route(key)


def test_insertion_order_does_not_matter():
    workers = [f"worker{i}" for i in range(4)]
    forward = HashRing(workers)
    backward = HashRing(list(reversed(workers)))
    for key in _random_keys(11, 500):
        assert forward.route(key) == backward.route(key)


def test_str_and_bytes_keys_route_identically():
    ring = HashRing(["worker0", "worker1", "worker2"])
    for key in ("table-alpha", "table-beta", "x" * 64):
        assert ring.route(key) == ring.route(key.encode())


# -- balance -----------------------------------------------------------------

@pytest.mark.parametrize("n_workers", [2, 4, 8])
@pytest.mark.parametrize("seed", [3, 17])
def test_load_is_balanced(n_workers, seed):
    ring = HashRing([f"worker{i}" for i in range(n_workers)])
    keys = _random_keys(seed, 4000)
    counts = ring.distribution(keys)
    assert sum(counts.values()) == len(keys)
    mean = len(keys) / n_workers
    # With 128 virtual nodes the heaviest worker stays well-bounded and no
    # worker starves.
    assert max(counts.values()) <= 1.5 * mean
    assert min(counts.values()) >= 0.5 * mean


def test_every_worker_owns_some_keyspace():
    ring = HashRing([f"worker{i}" for i in range(8)])
    counts = ring.distribution(_random_keys(23, 2000))
    assert all(count > 0 for count in counts.values())


# -- minimal disruption ------------------------------------------------------

@pytest.mark.parametrize("n_workers", [3, 4, 8])
def test_adding_one_worker_remaps_bounded_fraction(n_workers):
    keys = _random_keys(5, 3000)
    before = HashRing([f"worker{i}" for i in range(n_workers)])
    owners_before = {key: before.route(key) for key in keys}
    before.add_worker(f"worker{n_workers}")
    moved = sum(1 for key in keys if before.route(key) != owners_before[key])
    # The new worker should take ~1/(N+1) of the keyspace; ISSUE bound 2/N.
    assert moved <= 2 * len(keys) / n_workers
    # And everything that moved must have moved TO the new worker.
    for key in keys:
        if before.route(key) != owners_before[key]:
            assert before.route(key) == f"worker{n_workers}"


@pytest.mark.parametrize("n_workers", [3, 4, 8])
def test_removing_one_worker_remaps_only_its_keys(n_workers):
    keys = _random_keys(29, 3000)
    ring = HashRing([f"worker{i}" for i in range(n_workers)])
    owners_before = {key: ring.route(key) for key in keys}
    ring.remove_worker("worker0")
    for key in keys:
        if owners_before[key] != "worker0":
            # Keys not owned by the removed worker must not move at all.
            assert ring.route(key) == owners_before[key]
        else:
            assert ring.route(key) != "worker0"


def test_add_then_remove_restores_exact_routing():
    keys = _random_keys(31, 1000)
    ring = HashRing(["worker0", "worker1", "worker2"])
    owners = {key: ring.route(key) for key in keys}
    ring.add_worker("worker3")
    ring.remove_worker("worker3")
    assert {key: ring.route(key) for key in keys} == owners


# -- membership edge cases ---------------------------------------------------

def test_empty_ring_raises():
    with pytest.raises(LookupError):
        HashRing().route(b"anything")


def test_duplicate_worker_rejected():
    ring = HashRing(["worker0"])
    with pytest.raises(ValueError):
        ring.add_worker("worker0")


def test_remove_unknown_worker_rejected():
    with pytest.raises(KeyError):
        HashRing(["worker0"]).remove_worker("worker9")


def test_replicas_validated():
    with pytest.raises(ValueError):
        HashRing(replicas=0)
    assert HashRing(replicas=DEFAULT_REPLICAS).replicas == DEFAULT_REPLICAS


def test_single_worker_owns_everything():
    ring = HashRing(["only"])
    assert all(ring.route(key) == "only" for key in _random_keys(37, 100))


# -- payload routing keys ----------------------------------------------------

def test_route_key_ignores_dict_ordering():
    a = {"table": {"caption": "c", "headers": ["h1", "h2"]}}
    b = {"table": {"headers": ["h1", "h2"], "caption": "c"}}
    assert route_key_for(a) == route_key_for(b)


def test_route_key_uses_table_identity_across_tasks():
    table = {"caption": "c", "headers": ["h"]}
    linking = {"table": table, "row": 3, "col": 1, "mention": "m"}
    schema = {"table": table, "seed_headers": ["h"]}
    # Same table under different tasks -> same worker -> cross-task reuse.
    assert route_key_for(linking, task="entity_linking") == (
        route_key_for(schema, task="schema_augmentation"))


def test_route_key_distinguishes_tables():
    one = {"table": {"caption": "a"}}
    two = {"table": {"caption": "b"}}
    assert route_key_for(one) != route_key_for(two)
