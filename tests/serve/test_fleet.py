"""Fleet stress suite: concurrent parity, backpressure, drain, reload.

The headline assertion: a multi-worker fleet driven by 8 threads of mixed
six-task traffic answers every request bit-identically to the single-worker
:class:`Predictor` it was cloned from.  Plus the lifecycle contracts —
typed 429s once a lane's queue is full, typed 503s while draining, no lost
futures on drain/close, and weight reloads only under drain.
"""

import threading

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import (
    EncodeCache,
    FleetSaturated,
    FleetUnavailable,
    PredictorFleet,
    clone_predictor,
)


@pytest.fixture
def mixed_payloads(bundle):
    """JSON payloads for every task, plus single-worker expected outputs."""
    payloads = {}
    expected = {}
    for task, instances in bundle.examples.items():
        adapter = bundle.predictor.adapter_for(task)
        payloads[task] = [adapter.encode_instance(i) for i in instances]
        expected[task] = bundle.predictor.predict_payloads(task,
                                                           payloads[task])
    return payloads, expected


@pytest.fixture
def fleet(bundle):
    with PredictorFleet(bundle.predictor, workers=3, max_queue=16) as fleet:
        yield fleet


# -- concurrent parity -------------------------------------------------------

def test_fleet_matches_single_worker_under_concurrent_load(fleet,
                                                           mixed_payloads):
    payloads, expected = mixed_payloads
    tasks = sorted(payloads)
    assert len(tasks) == 6  # all six TUBE tasks take part

    requests = []
    rng = np.random.default_rng(42)
    for _ in range(3):  # repeats exercise the per-worker caches
        for task in tasks:
            for index in range(len(payloads[task])):
                requests.append((task, index))
    rng.shuffle(requests)

    mismatches = []
    errors = []

    def drive(worker_requests):
        for task, index in worker_requests:
            try:
                got = fleet.predict_payloads(task, [payloads[task][index]])
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append((task, index, repr(error)))
                continue
            if got != [expected[task][index]]:
                mismatches.append((task, index))

    threads = [threading.Thread(target=drive, args=(requests[i::8],))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert mismatches == []


def test_batch_predictions_preserve_request_order(fleet, mixed_payloads):
    payloads, expected = mixed_payloads
    for task in sorted(payloads):
        # One batch spanning several route targets must come back in the
        # caller's order, not the per-worker completion order.
        batch = payloads[task] * 2
        assert fleet.predict_payloads(task, batch) == expected[task] * 2


def test_instance_api_matches_predictor(fleet, bundle):
    for task, instances in sorted(bundle.examples.items()):
        direct = bundle.predictor.predict_batch(task, instances)
        routed = fleet.predict_batch(task, instances)
        assert [p.to_dict() for p in routed] == [p.to_dict() for p in direct]


def test_same_table_always_lands_on_same_worker(fleet, mixed_payloads):
    payloads, _ = mixed_payloads
    for task, task_payloads in payloads.items():
        for payload in task_payloads:
            owners = {fleet.route(task, payload) for _ in range(5)}
            assert len(owners) == 1


def test_unknown_task_raises_key_error(fleet):
    with pytest.raises(KeyError):
        fleet.predict_payloads("no_such_task", [{}])


# -- backpressure ------------------------------------------------------------

def test_saturated_queue_raises_typed_429(bundle):
    with PredictorFleet(bundle.predictor, workers=1, max_queue=2) as fleet:
        worker = fleet._workers["worker0"]
        gate = threading.Event()
        entered = threading.Event()
        original = worker.predictor.predict_payloads

        def gated(task, payloads):
            entered.set()
            gate.wait(timeout=10)
            return original(task, payloads)

        worker.predictor.predict_payloads = gated
        task = "schema_augmentation"
        adapter = bundle.predictor.adapter_for(task)
        payload = adapter.encode_instance(bundle.examples[task][0])
        expected = bundle.predictor.predict_payloads(task, [payload])

        results = []
        threads = [threading.Thread(
            target=lambda: results.append(
                fleet.predict_payloads(task, [payload])))
            for _ in range(3)]
        try:
            # First request must be IN FLIGHT (popped off the queue, blocked
            # on the gate) before the next two are queued — otherwise they
            # race the lane thread for the 2 queue slots and one of the
            # setup threads takes the 429 this test wants to provoke below.
            threads[0].start()
            assert entered.wait(timeout=10)
            for thread in threads[1:]:
                thread.start()
            # 1 in flight + 2 queued = a full lane.
            pause = threading.Event()
            for _ in range(500):
                if worker.queue_depth >= 3:
                    break
                pause.wait(0.01)
            assert worker.queue_depth >= 3

            before = get_registry().counter(
                "serve.fleet.rejected.saturated").value
            with pytest.raises(FleetSaturated) as excinfo:
                fleet.predict_payloads(task, [payload])
            assert excinfo.value.status == 429
            assert get_registry().counter(
                "serve.fleet.rejected.saturated").value == before + 1
        finally:
            gate.set()
            for thread in threads:
                thread.join()
        # Every accepted request still resolved, correctly: nothing lost.
        assert results == [expected] * 3


def test_draining_fleet_raises_typed_503(fleet, mixed_payloads):
    payloads, expected = mixed_payloads
    task = sorted(payloads)[0]
    assert fleet.drain(timeout=10)
    with pytest.raises(FleetUnavailable) as excinfo:
        fleet.predict_payloads(task, [payloads[task][0]])
    assert excinfo.value.status == 503
    fleet.resume()
    assert fleet.predict_payloads(task, [payloads[task][0]]) == (
        [expected[task][0]])


# -- drain / shutdown --------------------------------------------------------

def test_drain_completes_all_accepted_futures(bundle, mixed_payloads):
    payloads, expected = mixed_payloads
    task = "schema_augmentation"
    with PredictorFleet(bundle.predictor, workers=2, max_queue=32) as fleet:
        futures = []
        for _ in range(4):
            for index, payload in enumerate(payloads[task]):
                name = fleet.route(task, payload)
                futures.append((index, fleet._submit(name, "payloads", task,
                                                     [payload])))
        assert fleet.drain(timeout=30)
        for index, future in futures:
            assert future.done()
            assert future.result() == [expected[task][index]]


def test_close_is_idempotent_and_final(bundle):
    fleet = PredictorFleet(bundle.predictor, workers=2)
    fleet.close()
    fleet.close()
    with pytest.raises(FleetUnavailable):
        fleet.predict_payloads("schema_augmentation", [{}])


# -- reload ------------------------------------------------------------------

def test_reload_requires_drain(fleet, bundle):
    state = {name: value for name, value in
             bundle.predictor._distinct_models()[0].state_dict().items()}
    with pytest.raises(FleetUnavailable):
        fleet.reload_state(state)


def test_reload_under_drain_clears_caches_and_keeps_parity(bundle,
                                                           mixed_payloads):
    payloads, expected = mixed_payloads
    task = "schema_augmentation"
    with PredictorFleet(bundle.predictor, workers=2, max_queue=32) as fleet:
        fleet.predict_payloads(task, payloads[task])
        assert fleet.cache_stats()["entries"] > 0
        assert fleet.drain(timeout=30)
        model = bundle.predictor._distinct_models()[0]
        fleet.reload_state(model.state_dict())
        stats = fleet.cache_stats()
        assert stats["entries"] == 0  # stale activations dropped
        fleet.resume()
        # Same weights reloaded -> same answers as the single worker.
        assert fleet.predict_payloads(task, payloads[task]) == expected[task]


# -- membership --------------------------------------------------------------

def test_add_and_remove_worker_preserve_parity(bundle, mixed_payloads):
    payloads, expected = mixed_payloads
    task = "schema_augmentation"
    with PredictorFleet(bundle.predictor, workers=2) as fleet:
        assert fleet.predict_payloads(task, payloads[task]) == expected[task]
        added = fleet.add_worker()
        assert added in fleet.worker_names
        assert fleet.predict_payloads(task, payloads[task]) == expected[task]
        fleet.remove_worker(added)
        assert added not in fleet.worker_names
        assert fleet.predict_payloads(task, payloads[task]) == expected[task]


# -- metrics -----------------------------------------------------------------

def test_cache_stats_aggregate_is_traffic_weighted(fleet, mixed_payloads):
    payloads, _ = mixed_payloads
    for task, task_payloads in payloads.items():
        for _ in range(2):
            fleet.predict_payloads(task, task_payloads)
    stats = fleet.cache_stats()
    per_worker = stats["per_worker"]
    assert sorted(per_worker) == sorted(fleet.worker_names)
    total_hits = sum(s["hits"] for s in per_worker.values())
    total_misses = sum(s["misses"] for s in per_worker.values())
    assert stats["hits"] == total_hits
    assert stats["misses"] == total_misses
    # The rollup rate is summed-hits over summed-lookups, not a mean of
    # per-worker rates (the aggregation bug this API replaces).
    assert stats["hit_rate"] == pytest.approx(
        total_hits / (total_hits + total_misses))
    assert total_hits > 0  # repeats hit the partitioned caches


def test_worker_gauges_are_namespaced(fleet, mixed_payloads):
    payloads, _ = mixed_payloads
    task = "schema_augmentation"
    fleet.predict_payloads(task, payloads[task])
    fleet.predict_payloads(task, payloads[task])
    fleet.cache_stats()
    metrics = get_registry().as_dict()
    for name in fleet.worker_names:
        assert f"serve.{name}.cache.hit_rate" in metrics
    assert "serve.encode_cache.hit_rate" in metrics


def test_aggregate_static_helper():
    stats = EncodeCache.aggregate([
        {"hits": 90, "misses": 10, "entries": 5, "capacity": 8},
        {"hits": 0, "misses": 900, "entries": 8, "capacity": 8},
    ])
    # 90 hits of 1000 lookups: a naive mean of rates would claim 45%.
    assert stats["hit_rate"] == pytest.approx(0.09)
    assert stats["hits"] == 90 and stats["misses"] == 910
    assert stats["entries"] == 13 and stats["capacity"] == 16


# -- cloning -----------------------------------------------------------------

def test_clones_share_weights_but_not_caches(bundle):
    template = bundle.predictor
    first = clone_predictor(template, name="worker_a")
    second = clone_predictor(template, name="worker_b")
    assert first.cache is not second.cache
    params_t = dict(template._distinct_models()[0].named_parameters())
    params_a = dict(first._distinct_models()[0].named_parameters())
    for name, parameter in params_t.items():
        assert params_a[name] is parameter  # zero weight duplication
    assert first._distinct_models()[0] is not template._distinct_models()[0]
