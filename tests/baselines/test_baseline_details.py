"""Focused unit tests for baseline internals."""

import numpy as np
import pytest

from repro.baselines.t2k import T2KLinker
from repro.baselines.hybrid import HybridLinker
from repro.kb.knowledge_base import Entity, KnowledgeBase
from repro.retrieval.word2vec import Word2Vec, Word2VecConfig
from repro.tasks.entity_linking import LinkingInstance


def tiny_kb():
    kb = KnowledgeBase()
    kb.add_entity(Entity("d1", "Ana Roth", ["director"]))
    kb.add_entity(Entity("a1", "Ana Roth", ["actor"]))  # homonym
    kb.add_entity(Entity("f1", "Silent River", ["film"]))
    kb.add_entity(Entity("f2", "Crimson Garden", ["film"]))
    kb.add_fact("f1", "film.director", "d1")
    kb.add_fact("f2", "film.director", "d1")
    return kb


class _FakeTable:
    def __init__(self, table_id):
        self.table_id = table_id


def column(instances_spec):
    """Build LinkingInstances for one column from (mention, truth, cands)."""
    table = _FakeTable("t")
    out = []
    for row, (mention, truth, candidates, scores) in enumerate(instances_spec):
        out.append(LinkingInstance(table, row, 0, mention, truth,
                                   candidates, scores))
    return out


def test_t2k_type_coherence_flips_ambiguous_cell():
    """A column full of directors should pull the homonym to the director."""
    kb = tiny_kb()
    # Two unambiguous director cells + one ambiguous cell where the actor
    # has the (slightly) higher string score.
    instances = column([
        ("Ana Roth", "d1", ["d1"], [1.0]),
        ("Ana Roth", "d1", ["d1"], [1.0]),
        ("Ana Roth", "d1", ["a1", "d1"], [1.0, 0.99]),
    ])
    linker = T2KLinker(kb, type_weight=0.5, min_confidence=0.0)
    predictions = linker.predict(instances)
    assert predictions[2] == "d1"


def test_t2k_confidence_gate_refuses_weak_links():
    kb = tiny_kb()
    instances = column([("Ana", "d1", ["d1"], [0.2])])
    linker = T2KLinker(kb, min_confidence=0.8)
    assert linker.predict(instances) == [None]


def test_t2k_empty_candidates_stay_none():
    kb = tiny_kb()
    instances = column([("???", "d1", [], [])])
    assert T2KLinker(kb).predict(instances) == [None]


def test_hybrid_coherence_flips_with_embeddings():
    """Neighbors sharing co-occurrence with one candidate should flip the
    ambiguous prediction toward it."""
    model = Word2Vec(Word2VecConfig(dim=8, epochs=5, seed=0)).train(
        [["d1", "f1", "f2"]] * 60 + [["a1", "x1", "x2"]] * 60)
    table = _FakeTable("t")
    # Row neighbor f1 is firmly linked; ambiguous mention prefers a1 by string.
    neighbor = LinkingInstance(table, 0, 1, "Silent River", "f1", ["f1"], [1.0])
    ambiguous = LinkingInstance(table, 0, 0, "Ana Roth", "d1",
                                ["a1", "d1"], [1.0, 0.995])
    linker = HybridLinker(model, coherence_weight=2.0)
    predictions = linker.predict([neighbor, ambiguous])
    assert predictions[1] == "d1"


def test_hybrid_no_neighbors_keeps_string_order():
    model = Word2Vec(Word2VecConfig(dim=8, epochs=1, seed=0)).train(
        [["a", "b"]] * 10)
    table = _FakeTable("t")
    instance = LinkingInstance(table, 0, 0, "m", "x", ["x", "y"], [0.9, 0.5])
    assert HybridLinker(model).predict([instance]) == ["x"]


def test_adam_weight_decay_shrinks_weights():
    from repro.nn import Adam, Parameter

    p = Parameter(np.array([10.0]))
    optimizer = Adam([p], learning_rate=0.1, weight_decay=0.5)
    for _ in range(50):
        p.grad = np.array([0.0])  # only decay acts
        optimizer.step()
    assert abs(p.data[0]) < 10.0


def test_adam_with_schedule_changes_step_size():
    from repro.nn import Adam, LinearDecaySchedule, Parameter

    schedule = LinearDecaySchedule(1.0, total_steps=2, final_fraction=0.0)
    p = Parameter(np.array([0.0]))
    optimizer = Adam([p], schedule=schedule)
    p.grad = np.array([1.0])
    optimizer.step()
    first_move = abs(p.data[0])
    # After total_steps the lr is ~0 -> no further movement.
    for _ in range(3):
        p.grad = np.array([1.0])
        optimizer.step()
    later = abs(p.data[0])
    assert first_move > 0
    assert later < first_move * 10  # bounded; lr decayed to zero
