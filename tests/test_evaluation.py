"""Tests for the experiment registry and report formatting."""

from repro.evaluation import EXPERIMENTS, format_metric_rows, format_pk_rows
from repro.evaluation.registry import format_registry
from repro.tasks.metrics import PrecisionRecallF1


def test_registry_covers_every_paper_artifact():
    artifacts = {e.artifact for e in EXPERIMENTS}
    expected = {f"Table {i}" for i in range(3, 12)} | {"Figure 6", "Figure 7a", "Figure 7b"}
    assert artifacts == expected


def test_registry_benchmarks_exist():
    import os
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    for experiment in EXPERIMENTS:
        assert os.path.exists(os.path.join(root, experiment.benchmark)), experiment.benchmark


def test_registry_modules_importable():
    import importlib
    for experiment in EXPERIMENTS:
        for module in experiment.modules:
            importlib.import_module(module)


def test_format_registry_text():
    text = format_registry()
    assert "Table 4" in text
    assert "bench_table04_entity_linking" in text


def test_format_metric_rows():
    rows = {"A": PrecisionRecallF1(0.5, 0.25, 1 / 3)}
    text = format_metric_rows(rows)
    assert "50.00" in text
    assert "25.00" in text
    assert text.splitlines()[0].split() == ["Method", "F1", "P", "R"]


def test_format_pk_rows():
    rows = {"TURL": {1: 0.5, 3: 0.6, 5: 0.7, 10: 0.8}}
    text = format_pk_rows(rows)
    assert "P@10" in text
    assert "80.00" in text
