"""Failure-injection and robustness tests across loaders and pipelines."""

import json
import os

import numpy as np
import pytest

from repro.core.pretrain import load_checkpoint, save_checkpoint
from repro.data.corpus import TableCorpus
from repro.data.table import Column, EntityCell, Table
from repro.kb.knowledge_base import Entity, KnowledgeBase


def test_corpus_loader_skips_blank_lines(tmp_path):
    table = Table("t1", "P", "S", "c", None, [
        Column("A", "entity", [EntityCell("e", "m")])])
    path = str(tmp_path / "corpus.jsonl")
    with open(path, "w") as handle:
        handle.write("\n")
        handle.write(table.to_json() + "\n")
        handle.write("   \n")
    corpus = TableCorpus.load_jsonl(path)
    assert len(corpus) == 1


def test_corpus_loader_rejects_garbage(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    with open(path, "w") as handle:
        handle.write("{not json}\n")
    with pytest.raises(json.JSONDecodeError):
        TableCorpus.load_jsonl(path)


def test_kb_loader_rejects_unknown_relation(tmp_path):
    payload = {
        "entities": [
            {"entity_id": "a", "name": "A", "types": ["person"],
             "aliases": [], "description": ""},
            {"entity_id": "b", "name": "B", "types": ["citytown"],
             "aliases": [], "description": ""},
        ],
        "facts": [["a", "made.up.relation", "b"]],
    }
    path = str(tmp_path / "kb.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    with pytest.raises(KeyError):
        KnowledgeBase.load(path)


def test_checkpoint_shape_mismatch_rejected(tmp_path, context):
    directory = str(tmp_path / "ckpt")
    save_checkpoint(directory, context.model, context.tokenizer,
                    context.entity_vocab)
    # Corrupt one weight's shape in the archive.
    from repro.nn.serialization import load_state_dict, save_state_dict

    state = load_state_dict(os.path.join(directory, "model.npz"))
    key = next(iter(state))
    state[key] = np.zeros((1, 1))
    save_state_dict(state, os.path.join(directory, "model.npz"))
    with pytest.raises(ValueError):
        load_checkpoint(directory)


def test_checkpoint_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(str(tmp_path / "nope"))


def test_empty_table_rejected_by_encoder(context):
    """A table with no columns has nothing to linearize; the model should
    still not crash when the caption alone is present."""
    table = Table("empty", "Some Page", "Section", "caption text", None, [
        Column("Only", "entity", [EntityCell("x", "mention")])])
    instance = context.linearizer.encode(table)
    from repro.core.batching import collate

    batch = collate([instance])
    token_hidden, entity_hidden = context.model.encode(batch)
    assert np.isfinite(token_hidden.data).all()
    assert np.isfinite(entity_hidden.data).all()


def test_table_with_all_unlinked_cells(context):
    table = Table("unlinked", "Page", "S", "c", None, [
        Column("A", "entity", [EntityCell(None, f"m{i}") for i in range(4)]),
        Column("B", "entity", [EntityCell(None, f"x{i}") for i in range(4)]),
    ])
    instance = context.linearizer.encode(table)
    assert (instance.entity_ids == 0).all()  # all PAD
    from repro.core.batching import collate

    _, entity_hidden = context.model.encode(collate([instance]))
    assert np.isfinite(entity_hidden.data).all()


def test_lookup_with_adversarial_mentions(context):
    from repro.kb.lookup import LookupService

    service = LookupService(context.kb)
    for mention in ["", " ", "....", "a", "🤖", "x" * 500]:
        results = service.lookup(mention)
        assert isinstance(results, list)


def test_tokenizer_adversarial_inputs(context):
    for text in ["", " \t\n", "🤖🤖", "a" * 1000, "[MASK]", "\\x00"]:
        ids = context.tokenizer.encode(text)
        assert isinstance(ids, list)
        assert all(0 <= i < len(context.tokenizer.vocab) for i in ids)


def test_masking_with_no_eligible_entities(context, rng):
    """A batch whose entities are all PAD must not crash masking."""
    from repro.core.batching import collate
    from repro.core.masking import MaskingPolicy

    table = Table("nolink", "Page title words here", "S", "caption", None, [
        Column("A", "entity", [EntityCell(None, f"m{i}") for i in range(3)])])
    batch = collate([context.linearizer.encode(table)])
    policy = MaskingPolicy(context.config, len(context.tokenizer.vocab),
                           len(context.entity_vocab))
    masked = policy.apply(batch, rng)
    assert masked.n_mer == 0
    assert masked.n_mlm >= 0


def test_pretrainer_step_handles_empty_mer(context, rng):
    """A step where MER selects nothing must still optimize MLM."""
    import dataclasses

    from repro.core.batching import collate
    from repro.core.pretrain import Pretrainer

    config = dataclasses.replace(context.config, mer_probability=0.0)
    model = context.fresh_model(seed=6)
    pretrainer = Pretrainer(model, [], context.candidate_builder, config)
    pretrainer._ensure_optimizer(5)
    instances = context.instances_for(context.splits.train)[:4]
    result = pretrainer.step(collate(instances))
    assert result["mer"] == 0.0
    assert result["loss"] > 0.0
