"""Unit tests for the shared training engine on a tiny synthetic task."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Tensor, binary_cross_entropy_logits
from repro.obs import RunJournal, read_journal
from repro.train import (
    StepOutput,
    TrainSpec,
    TrainableTask,
    Trainer,
    subsample_items,
)


class _ToyModule(Module):
    def __init__(self, dim=3, n_out=2, seed=7):
        super().__init__()
        self.linear = Linear(dim, n_out, np.random.default_rng(seed))

    def forward(self, x):
        return self.linear(x)


class ToyTask(TrainableTask):
    """Binary classification over fixed random items; fully deterministic."""

    name = "toy"

    def __init__(self, n_items=6, dim=3, seed=7, skip_odd=False,
                 null_odd=False):
        self.module = _ToyModule(dim=dim, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.items = [(rng.normal(size=dim), (rng.random(2) > 0.5).astype(float))
                      for _ in range(n_items)]
        self.skip_odd = skip_odd
        self.null_odd = null_odd
        self.eval_calls = []
        self.eval_value = 0.5

    def build_batches(self):
        return list(range(len(self.items)))

    def loss(self, index, rng):
        if self.skip_odd and index % 2 == 1:
            return None
        if self.null_odd and index % 2 == 1:
            return StepOutput(loss=None, extras={"nulled": 1.0})
        x, labels = self.items[index]
        logits = self.module(Tensor(x.reshape(1, -1)))
        return binary_cross_entropy_logits(logits, labels.reshape(1, -1))

    def eval_metric(self):
        self.eval_calls.append(self.module.training)
        return self.eval_value

    def config_dict(self):
        return {"n_items": len(self.items)}


def _state(module):
    return {k: v.copy() for k, v in module.state_dict().items()}


def test_same_seed_is_bit_identical():
    runs = []
    for _ in range(2):
        task = ToyTask()
        stats = Trainer(task, TrainSpec(epochs=3, seed=5)).fit()
        runs.append((stats.losses, _state(task.module)))
    assert runs[0][0] == runs[1][0]
    for key, value in runs[0][1].items():
        np.testing.assert_array_equal(runs[1][1][key], value)


def test_sanitize_spec_is_bit_identical_to_off():
    runs = []
    for sanitize in (False, True):
        task = ToyTask()
        stats = Trainer(task, TrainSpec(epochs=3, seed=5,
                                        sanitize=sanitize)).fit()
        runs.append((stats.losses, _state(task.module)))
    assert runs[0][0] == runs[1][0]
    for key, value in runs[0][1].items():
        np.testing.assert_array_equal(runs[1][1][key], value)


def test_sanitize_spec_round_trips_through_dict():
    spec = TrainSpec(epochs=2, sanitize=True)
    restored = TrainSpec.from_dict(spec.to_dict())
    assert restored.sanitize is True
    # Checkpoints written before the field existed restore to the default.
    legacy = spec.to_dict()
    del legacy["sanitize"]
    assert TrainSpec.from_dict(legacy).sanitize is False


def test_different_seed_differs():
    losses = []
    for seed in (0, 1):
        task = ToyTask()
        losses.append(Trainer(task, TrainSpec(epochs=2, seed=seed)).fit().losses)
    assert losses[0] != losses[1]


def test_linear_schedule_decays_learning_rate():
    task = ToyTask()
    spec = TrainSpec(epochs=4, learning_rate=1e-2, schedule="linear",
                     final_lr_fraction=0.1)
    stats = Trainer(task, spec).fit()
    assert stats.lrs[0] == pytest.approx(1e-2)
    assert all(a >= b for a, b in zip(stats.lrs, stats.lrs[1:]))
    assert stats.lrs[-1] < stats.lrs[0]
    assert min(stats.lrs) >= 0.1 * 1e-2 - 1e-12


def test_unknown_schedule_rejected():
    with pytest.raises(ValueError):
        TrainSpec(schedule="cosine")


def test_gradient_clipping_caps_applied_updates():
    clip = 1e-3
    task = ToyTask()
    stats = Trainer(task, TrainSpec(epochs=1, gradient_clip=clip)).fit()
    # grad_norms record the PRE-clip norm, so training telemetry stays honest.
    assert all(norm > 0 for norm in stats.grad_norms)
    unclipped = Trainer(ToyTask(), TrainSpec(epochs=1)).fit()
    assert stats.losses[0] == unclipped.losses[0]  # first forward identical
    assert stats.losses[-1] != unclipped.losses[-1]  # clipped updates diverge


def test_early_stopping_on_flat_loss():
    task = ToyTask(null_odd=True, skip_odd=False)
    # All odd items contribute null steps; force a fully flat loss by making
    # every item null.
    task.null_odd = True
    task.items = task.items[:2]
    original_loss = task.loss
    task.loss = lambda index, rng: StepOutput(loss=None)
    spec = TrainSpec(epochs=10, early_stop_patience=1)
    trainer = Trainer(task, spec)
    stats = trainer.fit()
    assert stats.stopped_early
    assert trainer.epochs_completed == 2  # best at epoch 1, stale at epoch 2
    task.loss = original_loss


def test_skip_vs_null_step_semantics():
    skipped = Trainer(ToyTask(skip_odd=True), TrainSpec(epochs=1, seed=3)).fit()
    nulled = Trainer(ToyTask(null_odd=True), TrainSpec(epochs=1, seed=3)).fit()
    # None from loss() drops the item entirely; StepOutput(loss=None) records
    # a zero-loss step without an update.
    assert skipped.steps == 3
    assert nulled.steps == 6
    assert nulled.losses.count(0.0) == 3
    assert nulled.extras["nulled"] == [1.0, 1.0, 1.0]
    assert skipped.epoch_losses == nulled.epoch_losses


def test_eval_hook_cadence_and_mode_restored():
    task = ToyTask()
    spec = TrainSpec(epochs=1, eval_every=2, eval_at_end=True)
    stats = Trainer(task, spec).fit()
    assert stats.eval_steps == [2, 4, 6, 6]
    assert stats.eval_values == [0.5] * 4
    # The hook runs in eval mode and the engine restores train mode after.
    assert task.eval_calls == [False] * 4
    assert task.module.training


def test_eval_metric_none_disables_probes():
    task = ToyTask()
    task.eval_value = None
    stats = Trainer(task, TrainSpec(epochs=1, eval_every=2,
                                    eval_at_end=True)).fit()
    assert stats.eval_steps == []
    assert stats.eval_values == []


def test_fit_epochs_argument_caps_additional_epochs():
    task = ToyTask()
    trainer = Trainer(task, TrainSpec(epochs=4, seed=2))
    first = trainer.fit(epochs=1)
    assert trainer.epochs_completed == 1
    assert len(first.epoch_losses) == 1
    rest = trainer.fit()
    assert trainer.epochs_completed == 4
    assert len(rest.epoch_losses) == 3


def test_journal_records_header_steps_and_probe(tmp_path):
    path = str(tmp_path / "run.jsonl")
    task = ToyTask()
    with RunJournal(path) as journal:
        Trainer(task, TrainSpec(epochs=1, eval_at_end=True),
                journal=journal).fit()
    events = read_journal(path)
    kinds = [event["event"] for event in events]
    assert kinds[0] == "header"
    assert kinds.count("step") == 6
    assert kinds[-1] == "probe"
    header = events[0]
    assert header["task"] == "toy"
    assert header["config"] == {"n_items": 6}
    assert header["spec"]["epochs"] == 1
    step = next(event for event in events if event["event"] == "step")
    for key in ("loss", "lr", "grad_norm", "seconds", "forward_seconds"):
        assert key in step


def test_subsample_items_is_seeded_and_order_preserving():
    items = list("abcdefgh")
    first = subsample_items(items, 4, seed=9)
    second = subsample_items(items, 4, seed=9)
    assert first == second
    assert len(first) == 4
    assert first == sorted(first, key=items.index)  # original relative order
    assert subsample_items(items, 4, seed=10) != first


def test_subsample_items_is_group_aware():
    groups = [["a"] * 3, ["b"] * 2, ["c"] * 4, ["d"]]
    chosen = subsample_items(groups, 5, seed=0, size_of=len)
    # Whole groups are kept until the instance budget is reached.
    total = sum(len(group) for group in chosen)
    assert total >= 5
    assert all(group in groups for group in chosen)


def test_subsample_items_no_cap_returns_everything():
    items = [1, 2, 3]
    assert subsample_items(items, None, seed=0) == items
    assert subsample_items(items, 10, seed=0) == items
    assert len(subsample_items(items, 0, seed=0)) == 1  # at least one item


def test_fit_attributes_spans_to_active_trace():
    """A fit() triggered inside a request trace records its train and eval
    spans into that trace — including eval probes that hop threads."""
    import threading

    from repro.obs import adopt_context, capture_context, start_trace

    class ThreadedEvalTask(ToyTask):
        """eval_metric runs on a worker thread, as a serving-triggered
        evaluation would; the handoff uses capture/adopt."""

        def eval_metric(self):
            snapshot = capture_context()
            result = {}

            def probe():
                with adopt_context(snapshot):
                    result["value"] = super(ThreadedEvalTask,
                                            self).eval_metric()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            return result["value"]

    task = ThreadedEvalTask()
    with start_trace("serve/finetune_demo") as context:
        Trainer(task, TrainSpec(epochs=1, eval_at_end=True)).fit()
    names = [span.name for span in context.spans]
    assert "toy/train" in names
    assert "toy/eval" in names
    train_index = names.index("toy/train")
    assert context.spans[train_index].parent == -1
    assert context.spans[names.index("toy/eval")].parent >= -1
    # outside a trace the same run records nothing (no lingering context)
    task2 = ToyTask()
    Trainer(task2, TrainSpec(epochs=1, eval_at_end=True)).fit()
    assert [span.name for span in context.spans] == names
