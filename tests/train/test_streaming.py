"""Streaming pre-training: bit-parity with the eager path, mid-epoch resume.

These tests pin the two guarantees that make the sharded corpus pipeline
safe to adopt:

* ``pretrain_streaming`` over a :class:`ShardedDataset` produces the same
  losses and weights as the historical in-memory path over the same split
  (``shuffle="flat"`` — the default).
* A ``shuffle="shard"`` run interrupted mid-epoch resumes from a checkpoint
  bit-identically, and refuses a checkpoint taken against a different
  corpus.
"""

import hashlib

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.candidates import CandidateBuilder
from repro.core.context import pretrain_streaming
from repro.core.linearize import Linearizer
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer, PretrainObjective
from repro.core.stream import TableInstanceStream
from repro.data.corpus import TableCorpus
from repro.data.shards import ShardedDataset, write_sharded_corpus
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig, generate_world
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import EntityVocabulary
from repro.train import Trainer

CONFIG = TURLConfig(num_layers=1, dim=32, intermediate_dim=64, num_heads=2,
                    batch_size=4)
VOCAB_SIZE = 600


@pytest.fixture(scope="module")
def stream_dataset(tmp_path_factory):
    kb = generate_world(WorldConfig(seed=21))
    directory = str(tmp_path_factory.mktemp("stream") / "corpus")
    return write_sharded_corpus(kb, SynthesisConfig(seed=13, n_tables=60),
                                directory, n_shards=3)


def _weight_digest(model) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for name, parameter in sorted(model.named_parameters()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(parameter.data).tobytes())
    return digest.hexdigest()


def _vocabularies(dataset):
    tokenizer = WordPieceTokenizer.train(dataset.metadata_texts("train"),
                                         vocab_size=VOCAB_SIZE)
    entity_vocab = EntityVocabulary.build_from_counts(
        dataset.entity_counts("train"), min_frequency=2)
    return tokenizer, entity_vocab


def _streaming_trainer(dataset, epochs: int, shuffle: str = "shard"):
    """A fresh, deterministic Trainer over the dataset's train stream."""
    tokenizer, entity_vocab = _vocabularies(dataset)
    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), CONFIG, seed=0)
    linearizer = Linearizer(tokenizer, entity_vocab, CONFIG)
    stream = TableInstanceStream(dataset, linearizer, split="train")
    pretrainer = Pretrainer(model, stream,
                            CandidateBuilder(dataset.instances("train"),
                                             entity_vocab, CONFIG),
                            CONFIG, seed=0, shuffle=shuffle)
    steps = max(1, int(np.ceil(len(stream) / CONFIG.batch_size)))
    pretrainer._ensure_optimizer(steps * epochs)
    task = PretrainObjective(pretrainer)
    return Trainer(task, pretrainer._spec(epochs), rng=pretrainer.rng,
                   optimizer=pretrainer.optimizer)


def test_streaming_matches_eager_bit_for_bit(stream_dataset):
    streamed_model, _, _, streamed = pretrain_streaming(
        stream_dataset, model_config=CONFIG, pretrain_epochs=1,
        vocab_size=VOCAB_SIZE, seed=0)

    # The historical eager path over the same split, same seeds.
    train = TableCorpus(stream_dataset.instances("train"))
    tokenizer, entity_vocab = _vocabularies(stream_dataset)
    model = TURLModel(len(tokenizer.vocab), len(entity_vocab), CONFIG, seed=0)
    linearizer = Linearizer(tokenizer, entity_vocab, CONFIG)
    instances = [linearizer.encode(table) for table in train]
    eager = Pretrainer(model, instances,
                       CandidateBuilder(train, entity_vocab, CONFIG),
                       CONFIG, seed=0).train(n_epochs=1)

    assert streamed.steps == eager.steps > 0
    np.testing.assert_array_equal(streamed.losses, eager.losses)
    assert _weight_digest(streamed_model) == _weight_digest(model)


def test_shard_shuffle_mid_epoch_resume_is_exact(stream_dataset, tmp_path):
    epochs = 2
    baseline = _streaming_trainer(stream_dataset, epochs)
    full = baseline.fit()
    pause_at = len(full.losses) // 3
    assert pause_at >= 1

    interrupted = _streaming_trainer(stream_dataset, epochs)
    first = interrupted.fit(max_steps=pause_at)
    assert len(first.losses) == pause_at
    assert interrupted.chunks_consumed > 0  # genuinely mid-epoch
    interrupted.save(str(tmp_path / "ckpt"))

    resumed = Trainer.restore(str(tmp_path / "ckpt"),
                              _streaming_trainer(stream_dataset, epochs).task)
    rest = resumed.fit()

    np.testing.assert_array_equal(first.losses + rest.losses, full.losses)
    assert (_weight_digest(resumed.task.module)
            == _weight_digest(baseline.task.module))


def test_restore_rejects_a_different_corpus(stream_dataset, tmp_path):
    import shutil

    from repro.data.shards import INDEX_FILE, INDEX_DTYPE, INDEX_HEADER

    trainer = _streaming_trainer(stream_dataset, 1)
    trainer.fit(max_steps=1)
    trainer.save(str(tmp_path / "ckpt"))

    # Same payloads (so vocabularies and weight shapes agree), different
    # index content — the stream position no longer describes this corpus.
    clone = str(tmp_path / "clone")
    shutil.copytree(stream_dataset.directory, clone)
    with open(f"{clone}/{INDEX_FILE}", "r+b") as handle:
        position = INDEX_HEADER.itemsize + INDEX_DTYPE.fields["bucket"][1]
        handle.seek(position)
        flipped = handle.read(1)[0] ^ 0x01
        handle.seek(position)
        handle.write(bytes([flipped]))
    with pytest.raises(ValueError, match="different corpus"):
        Trainer.restore(str(tmp_path / "ckpt"),
                        _streaming_trainer(ShardedDataset(clone), 1).task)


def test_stream_fingerprint_is_stable_across_reopens(stream_dataset):
    first = _streaming_trainer(stream_dataset, 1).task.stream_fingerprint()
    reopened = _streaming_trainer(ShardedDataset(stream_dataset.directory),
                                  1).task.stream_fingerprint()
    assert first is not None
    assert first == reopened
