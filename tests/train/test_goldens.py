"""Golden determinism: the shared engine reproduces the pre-refactor loops.

The constants below were captured from the original per-task training loops
(hand-rolled Adam in each task module) immediately before they were replaced
by :mod:`repro.train`.  Losses must match to the last bit and fine-tuned
parameters must hash identically — the refactor is required to be a pure
reorganization, not a numerics change.
"""

import hashlib

import numpy as np
import pytest

from repro.tasks.column_type import (
    ColumnTypeDataset,
    TURLColumnTypeAnnotator,
    build_column_type_dataset,
)
from repro.tasks.schema_augmentation import (
    TURLSchemaAugmenter,
    build_header_vocabulary,
    build_schema_instances,
)

PRETRAIN_FIRST5 = [12.287945215056766, 12.318376650532768, 12.253677335088147,
                   12.142332019817491, 12.284658592979511]
PRETRAIN_LAST = 10.023585705197235
PRETRAIN_STEPS = 68

COLUMN_TYPE_LOSSES = [0.5842772583760966, 0.29567858608241154]
COLUMN_TYPE_HASH = \
    "df054859ec69fbc75598d0751c90e9e6179efe516951b087c9c45a9115c08a11"

SCHEMA_LOSSES = [0.5462767598073717, 0.3493783286500021]
SCHEMA_HASH = \
    "7f5999d456aaadd9560f24e2c2cf6a5f64ac8cf1e8d51480e21b68bdc0f0ecea"


def _state_hash(module) -> str:
    digest = hashlib.sha256()
    for name, array in sorted(module.state_dict().items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def test_pretraining_matches_pre_refactor_losses(request):
    context = request.getfixturevalue("context")
    stats = context.pretrain_stats
    assert stats.losses[:5] == PRETRAIN_FIRST5
    assert stats.losses[-1] == PRETRAIN_LAST
    assert len(stats.losses) == PRETRAIN_STEPS


def test_column_type_finetune_matches_pre_refactor(request):
    context = request.getfixturevalue("context")
    full = build_column_type_dataset(context.kb, context.splits.train,
                                     context.splits.validation,
                                     context.splits.test,
                                     min_type_instances=5)
    dataset = ColumnTypeDataset(type_names=full.type_names,
                                train=full.train[:40],
                                validation=full.validation, test=full.test)
    annotator = TURLColumnTypeAnnotator(context.clone_model(),
                                        context.linearizer,
                                        len(full.type_names), seed=0)
    losses = annotator.finetune(dataset, epochs=2, lr=1e-3, seed=0)
    assert losses == COLUMN_TYPE_LOSSES
    assert _state_hash(annotator) == COLUMN_TYPE_HASH


def test_schema_augmentation_finetune_matches_pre_refactor(request):
    context = request.getfixturevalue("context")
    vocabulary = build_header_vocabulary(context.splits.train, min_tables=3)
    instances = build_schema_instances(context.splits.train, vocabulary,
                                       n_seed=1)[:30]
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary, seed=0)
    losses = augmenter.finetune(instances, epochs=2, lr=1e-3, seed=0)
    assert losses == SCHEMA_LOSSES
    assert _state_hash(augmenter) == SCHEMA_HASH
