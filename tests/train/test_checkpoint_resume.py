"""Save → resume → continue must equal an uninterrupted run, bit for bit."""

import numpy as np
import pytest

from repro.train import TrainSpec, Trainer

from tests.train.test_engine import ToyTask, _state


def test_resume_matches_uninterrupted_run(tmp_path):
    directory = str(tmp_path / "state")
    spec = TrainSpec(epochs=4, seed=11, schedule="linear", gradient_clip=5.0)

    uninterrupted_task = ToyTask()
    uninterrupted = Trainer(uninterrupted_task, spec)
    straight_stats = uninterrupted.fit()

    interrupted_task = ToyTask()
    interrupted = Trainer(interrupted_task, spec)
    first_stats = interrupted.fit(epochs=2)
    assert interrupted.epochs_completed == 2
    interrupted.save(directory)

    resumed_task = ToyTask()  # rebuilt identically, fresh weights
    resumed = Trainer.restore(directory, resumed_task)
    assert resumed.epochs_completed == 2
    rest_stats = resumed.fit()
    assert resumed.epochs_completed == 4

    assert first_stats.losses + rest_stats.losses == straight_stats.losses
    final = _state(uninterrupted_task.module)
    for key, value in _state(resumed_task.module).items():
        np.testing.assert_array_equal(value, final[key])


def test_restore_validates_task_name(tmp_path):
    directory = str(tmp_path / "state")
    trainer = Trainer(ToyTask(), TrainSpec(epochs=1))
    trainer.fit()
    trainer.save(directory)

    other = ToyTask()
    other.name = "not-toy"
    with pytest.raises(ValueError, match="not-toy"):
        Trainer.restore(directory, other)


def test_restore_spec_override_extends_training(tmp_path):
    directory = str(tmp_path / "state")
    trainer = Trainer(ToyTask(), TrainSpec(epochs=1, seed=4))
    trainer.fit()
    trainer.save(directory)

    task = ToyTask()
    resumed = Trainer.restore(directory, task,
                              spec=TrainSpec(epochs=3, seed=4))
    stats = resumed.fit()
    assert resumed.epochs_completed == 3
    assert len(stats.epoch_losses) == 2


def test_checkpoint_round_trips_optimizer_moments(tmp_path):
    directory = str(tmp_path / "state")
    trainer = Trainer(ToyTask(), TrainSpec(epochs=2, seed=1))
    trainer.fit()
    trainer.save(directory)

    resumed = Trainer.restore(directory, ToyTask())
    original = trainer._ensure_optimizer()
    restored = resumed._ensure_optimizer()
    assert restored.step_count == original.step_count
    for a, b in zip(original._m, restored._m):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(original._v, restored._v):
        np.testing.assert_array_equal(a, b)
    assert resumed.rng.bit_generator.state == trainer.rng.bit_generator.state
