"""Tests for relation extraction: labeling rule, TURL and BERT-style models."""

import numpy as np
import pytest

from repro.baselines.bert_re import BertStyleRelationExtractor
from repro.data.table import Column, EntityCell, Table
from repro.kb import Entity, KnowledgeBase
from repro.tasks.relation_extraction import (
    TURLRelationExtractor,
    build_relation_dataset,
    column_pair_relations,
)


@pytest.fixture(scope="module")
def relation_dataset(request):
    context = request.getfixturevalue("context")
    dataset = build_relation_dataset(
        context.kb, context.splits.train, context.splits.validation,
        context.splits.test, min_relation_instances=5)
    return context, dataset


def test_majority_vote_labeling():
    kb = KnowledgeBase()
    for i in range(4):
        kb.add_entity(Entity(f"f{i}", f"Film {i}", ["film"]))
        kb.add_entity(Entity(f"d{i}", f"Dir {i}", ["director"]))
    kb.add_fact("f0", "film.director", "d0")
    kb.add_fact("f1", "film.director", "d1")
    kb.add_fact("f2", "film.director", "d2")
    # f3-d3 deliberately unrelated: 3/4 pairs share the relation.
    table = Table("t", "", "", "", None, columns=[
        Column("Film", "entity", [EntityCell(f"f{i}", f"Film {i}") for i in range(4)]),
        Column("Director", "entity", [EntityCell(f"d{i}", f"Dir {i}") for i in range(4)]),
    ])
    assert column_pair_relations(table, 0, 1, kb) == {"film.director"}
    # Flip majority: only 2/4 pairs related -> no label.
    table.columns[1].cells[2] = EntityCell("d0", "Dir 0")
    assert column_pair_relations(table, 0, 1, kb) is None


def test_dataset_uses_subject_column(relation_dataset):
    _, dataset = relation_dataset
    assert dataset.relation_names
    for instance in dataset.train[:20]:
        assert instance.subject_col == instance.table.subject_column
        assert instance.object_col != instance.subject_col


def test_dataset_labels_match_synthesizer_annotations(relation_dataset):
    """Majority-vote labels should usually agree with the generator's
    ground-truth column relations."""
    _, dataset = relation_dataset
    agreements = total = 0
    for instance in dataset.train[:50]:
        annotated = instance.table.columns[instance.object_col].relation
        if annotated is None:
            continue
        total += 1
        agreements += annotated in instance.relations
    assert total > 0
    assert agreements / total > 0.9


def test_turl_extractor_learns(relation_dataset):
    context, dataset = relation_dataset
    extractor = TURLRelationExtractor(context.clone_model(), context.linearizer,
                                      len(dataset.relation_names))
    history = extractor.finetune(dataset, epochs=1, max_instances=80)
    assert np.mean(history["losses"][-10:]) < np.mean(history["losses"][:10])
    metrics = extractor.evaluate(dataset.test[:20], dataset)
    assert metrics.f1 > 0.4


def test_turl_extractor_map_curve(relation_dataset):
    context, dataset = relation_dataset
    extractor = TURLRelationExtractor(context.clone_model(), context.linearizer,
                                      len(dataset.relation_names))
    history = extractor.finetune(dataset, epochs=1, max_instances=60,
                                 map_every=20, map_instances=10)
    assert history["map_steps"]
    assert len(history["map_steps"]) == len(history["map_values"])
    assert all(0.0 <= v <= 1.0 for v in history["map_values"])


def test_bert_baseline_learns(relation_dataset):
    context, dataset = relation_dataset
    baseline = BertStyleRelationExtractor(context.tokenizer,
                                          len(dataset.relation_names),
                                          dim=32, num_layers=1, num_heads=2,
                                          intermediate_dim=64)
    history = baseline.finetune(dataset, epochs=1, max_instances=80)
    assert np.mean(history["losses"][-10:]) < np.mean(history["losses"][:10])
    predictions = baseline.predict(dataset.test[:5], dataset)
    assert len(predictions) == 5
    assert all(predictions)


def test_bert_baseline_ignores_cells(relation_dataset):
    """The text-only baseline must be invariant to table cell contents."""
    import copy
    context, dataset = relation_dataset
    baseline = BertStyleRelationExtractor(context.tokenizer,
                                          len(dataset.relation_names),
                                          dim=32, num_layers=1, num_heads=2,
                                          intermediate_dim=64)
    baseline.eval()
    instance = dataset.test[0]
    logits_a = baseline.pair_logits(instance).data
    shuffled = copy.deepcopy(instance)
    for column in shuffled.table.columns:
        if column.is_entity:
            for cell in column.cells:
                cell.mention = "zzz"
    logits_b = baseline.pair_logits(shuffled).data
    np.testing.assert_allclose(logits_a, logits_b)
