"""Tests for cell filling: header statistics, candidates, rankers."""

import numpy as np
import pytest

from repro.baselines.cell_filling import ExactRanker, H2HRanker, H2VRanker
from repro.tasks.cell_filling import (
    CellFillingCandidates,
    HeaderStatistics,
    TURLCellFiller,
    build_filling_instances,
)


@pytest.fixture(scope="module")
def filling(request):
    context = request.getfixturevalue("context")
    statistics = HeaderStatistics(context.splits.train)
    candidates = CellFillingCandidates(context.splits.train, statistics)
    instances = build_filling_instances(context.splits.test)
    return context, statistics, candidates, instances


def test_instances_from_subject_object_pairs(filling):
    context, _, _, instances = filling
    assert instances
    for instance in instances[:20]:
        assert instance.subject_id
        assert instance.true_object
        assert instance.object_header


def test_header_statistics_probability_axioms(filling):
    _, statistics, _, _ = filling
    headers = {h for pair in statistics.n for h in pair}
    assert headers
    some = next(iter(headers))
    # P(.|h) sums to ~1 over observed source headers.
    total = sum(statistics.probability(h, some) for h in headers)
    assert total == pytest.approx(1.0, abs=1e-6)
    assert statistics.probability("no such header", some) == 0.0
    assert statistics.probability(some, "no such header") == 0.0


def test_header_statistics_self_probability_positive(filling):
    _, statistics, _, _ = filling
    headers = {h for pair in statistics.n for h in pair}
    some = next(iter(sorted(headers)))
    assert statistics.probability(some, some) > 0.0


def test_candidates_grouped_with_source_headers(filling):
    _, _, candidates, instances = filling
    instance = next(i for i in instances
                    if candidates.row_neighbors.get(i.subject_id))
    results = candidates.candidates_for(instance.subject_id,
                                        instance.object_header,
                                        filter_related=False)
    assert results
    for entity_id, headers in results:
        assert headers
    ids = [entity_id for entity_id, _ in results]
    assert len(ids) == len(set(ids))


def test_filter_reduces_candidates(filling):
    _, _, candidates, instances = filling
    filtered_total = unfiltered_total = 0
    for instance in instances[:50]:
        filtered_total += len(candidates.candidates_for(
            instance.subject_id, instance.object_header))
        unfiltered_total += len(candidates.candidates_for(
            instance.subject_id, instance.object_header, filter_related=False))
    assert filtered_total <= unfiltered_total


def test_recall_reports(filling):
    _, _, candidates, instances = filling
    recall, size = candidates.recall(instances[:50])
    assert 0.0 <= recall <= 1.0
    assert size >= 0.0


def test_exact_ranker_prefers_matching_header():
    ranker = ExactRanker()
    candidates = [("right", ["club"]), ("wrong", ["stadium"])]
    class Q:
        object_header = "Club"
    ranked = ranker.rank(Q(), candidates)
    assert ranked[0] == "right"


def test_h2h_ranker_uses_statistics(filling):
    _, statistics, candidates, instances = filling
    ranker = H2HRanker(statistics)
    instance = instances[0]
    pairs = candidates.candidates_for(instance.subject_id, instance.object_header,
                                      filter_related=False)
    ranked = ranker.rank(instance, pairs)
    assert len(ranked) == len(pairs)


def test_h2v_ranker_synonym_similarity(filling):
    context, _, _, _ = filling
    ranker = H2VRanker(context.splits.train, epochs=2)
    assert ranker.similarity("club", "club") == 1.0
    assert -1.0 <= ranker.similarity("club", "stadium") <= 1.0


def test_turl_filler_ranks_with_mer(filling):
    context, _, candidates, instances = filling
    filler = TURLCellFiller(context.model, context.linearizer)
    instance = next(i for i in instances
                    if len(candidates.candidates_for(
                        i.subject_id, i.object_header, filter_related=False)) >= 2)
    pairs = candidates.candidates_for(instance.subject_id, instance.object_header,
                                      filter_related=False)
    ids = [c for c, _ in pairs]
    ranked = filler.rank(instance, ids)
    assert sorted(ranked) == sorted(ids)
    assert filler.rank(instance, []) == []


def test_turl_filler_precision_at(filling):
    context, _, candidates, instances = filling
    filler = TURLCellFiller(context.model, context.linearizer)
    metrics = filler.evaluate(instances[:30], candidates)
    assert set(metrics.values) == {"p@1", "p@3", "p@5", "p@10"}
    assert metrics.primary == "p@1"
    assert metrics.values["p@10"] >= metrics.values["p@1"]
