"""Tests for benchmark metrics, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks.metrics import (
    PrecisionRecallF1,
    average_precision,
    mean_average_precision,
    multilabel_micro_prf,
    precision_at_k,
    recall_at_k,
)


def test_prf_from_counts():
    metrics = PrecisionRecallF1.from_counts(8, 2, 2)
    assert metrics.precision == pytest.approx(0.8)
    assert metrics.recall == pytest.approx(0.8)
    assert metrics.f1 == pytest.approx(0.8)


def test_prf_zero_division_safe():
    metrics = PrecisionRecallF1.from_counts(0, 0, 0)
    assert metrics.f1 == 0.0
    assert PrecisionRecallF1.from_counts(0, 5, 0).precision == 0.0


def test_prf_percentages():
    metrics = PrecisionRecallF1(0.5, 0.25, 1 / 3).as_percentages()
    assert metrics.precision == pytest.approx(50)


def test_multilabel_micro():
    predictions = [{"a", "b"}, {"c"}]
    truths = [{"a"}, {"c", "d"}]
    metrics = multilabel_micro_prf(predictions, truths)
    # tp=2 (a, c), fp=1 (b), fn=1 (d)
    assert metrics.precision == pytest.approx(2 / 3)
    assert metrics.recall == pytest.approx(2 / 3)


def test_average_precision_perfect():
    assert average_precision(["a", "b", "c"], {"a", "b"}) == pytest.approx(1.0)


def test_average_precision_worst():
    assert average_precision(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)


def test_average_precision_empty_relevant():
    assert average_precision(["a"], set()) == 0.0


def test_map_averages():
    value = mean_average_precision([["a"], ["x", "b"]], [{"a"}, {"b"}])
    assert value == pytest.approx((1.0 + 0.5) / 2)


def test_map_empty():
    assert mean_average_precision([], []) == 0.0


def test_precision_at_k():
    assert precision_at_k(["x", "a"], {"a"}, 1) == 0.0
    assert precision_at_k(["x", "a"], {"a"}, 2) == 1.0


def test_recall_at_k():
    assert recall_at_k(["a", "x", "b"], {"a", "b", "c"}, 3) == pytest.approx(2 / 3)
    assert recall_at_k(["a"], set(), 1) == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=15, unique=True),
       st.sets(st.integers(0, 20), min_size=1, max_size=10))
def test_property_ap_bounded(ranked, relevant):
    value = average_precision(ranked, relevant)
    assert 0.0 <= value <= 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 10), min_size=1, max_size=10, unique=True),
       st.sets(st.integers(0, 10), min_size=1, max_size=5))
def test_property_patk_monotone_in_k(ranked, relevant):
    values = [precision_at_k(ranked, relevant, k) for k in range(1, len(ranked) + 1)]
    assert all(a <= b for a, b in zip(values, values[1:]))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 50))
def test_property_f1_between_p_and_r(tp, fp, fn):
    metrics = PrecisionRecallF1.from_counts(tp, fp, fn)
    low, high = sorted([metrics.precision, metrics.recall])
    assert low - 1e-9 <= metrics.f1 <= high + 1e-9
