"""Tests for entity linking: dataset, scoring semantics, TURL and baselines."""

import numpy as np
import pytest

from repro.baselines.hybrid import HybridLinker, train_corpus_entity_embeddings
from repro.baselines.lookup_linker import LookupLinker
from repro.baselines.t2k import T2KLinker
from repro.kb.lookup import LookupService
from repro.kb.schema import all_types
from repro.tasks.entity_linking import (
    LinkingInstance,
    TURLEntityLinker,
    build_linking_dataset,
    evaluate_linking,
    oracle_metrics,
)


@pytest.fixture(scope="module")
def linking(request):
    context = request.getfixturevalue("context")
    lookup = LookupService(context.kb)
    test = build_linking_dataset(context.splits.test, lookup, max_instances=60, seed=1)
    train = build_linking_dataset(context.splits.train, lookup,
                                  require_truth=True, max_instances=80, seed=1)
    return context, lookup, train, test


def test_dataset_builder_extracts_linked_mentions(linking):
    _, _, train, test = linking
    assert train and test
    for instance in train:
        assert instance.true_id in instance.candidates  # require_truth
        assert len(instance.candidates) == len(instance.candidate_scores)


def test_dataset_builder_max_instances(linking):
    context, lookup, _, _ = linking
    limited = build_linking_dataset(context.splits.test, lookup, max_instances=5)
    assert len(limited) == 5


def test_evaluate_linking_semantics():
    instances = [
        LinkingInstance(None, 0, 0, "m", "e1", ["e1"]),
        LinkingInstance(None, 0, 1, "m", "e2", ["e3"]),
        LinkingInstance(None, 0, 2, "m", "e4", []),
    ]
    metrics = evaluate_linking(["e1", "e3", None], instances)
    # tp=1, fp=1 (wrong link), no-prediction only hurts recall.
    assert metrics.precision == pytest.approx(0.5)
    assert metrics.recall == pytest.approx(1 / 3)


def test_oracle_counts_candidate_recall():
    instances = [
        LinkingInstance(None, 0, 0, "m", "e1", ["e9", "e1"]),
        LinkingInstance(None, 0, 1, "m", "e2", ["e9"]),
    ]
    metrics = oracle_metrics(instances)
    assert metrics.recall == pytest.approx(0.5)


def test_lookup_linker_predicts_top1(linking):
    _, _, _, test = linking
    predictions = LookupLinker().predict(test)
    for predicted, instance in zip(predictions, test):
        if instance.candidates:
            assert predicted == instance.candidates[0]
        else:
            assert predicted is None


def test_t2k_linker_runs_and_is_precision_oriented(linking):
    context, _, _, test = linking
    linker = T2KLinker(context.kb, min_confidence=0.9)
    metrics = linker.evaluate(test)
    # The confidence gate should refuse some links: precision >= recall.
    assert metrics.precision >= metrics.recall


def test_hybrid_linker_at_least_lookup(linking):
    context, _, _, test = linking
    embeddings = train_corpus_entity_embeddings(context.splits.train, epochs=1)
    hybrid = HybridLinker(embeddings).evaluate(test)
    lookup = LookupLinker().evaluate(test)
    assert hybrid.f1 >= lookup.f1 - 0.08


def test_turl_linker_finetune_and_predict(linking):
    context, _, train, test = linking
    linker = TURLEntityLinker(context.clone_model(), context.linearizer,
                              context.kb, all_types())
    losses = linker.finetune(train, epochs=2, lr=5e-4)
    assert losses[-1] < losses[0]
    predictions = linker.predict(test[:20])
    assert len(predictions) == 20
    for predicted, instance in zip(predictions, test[:20]):
        if instance.candidates:
            assert predicted in instance.candidates
        else:
            assert predicted is None


def test_entity_embedding_frozen_during_scoring(linking):
    """Regression: candidate scoring consumes the pre-trained entity
    embedding as a frozen feature (detach before the gather), so gradients
    from the scoring head must never reach the embedding table through
    ``_score_cell`` — only through the (trainable) input-encoding path."""
    from repro.nn import Tensor

    context, _, train, _ = linking
    linker = TURLEntityLinker(context.clone_model(), context.linearizer,
                              context.kb, all_types())
    assert linker.use_entity_embedding
    instance = next(i for i in train if len(i.candidates) >= 2)
    cell_hidden = Tensor(
        np.random.default_rng(0).normal(size=(context.config.dim,)),
        requires_grad=True)
    linker.zero_grad()
    logits = linker._score_cell(cell_hidden, instance.candidates)
    logits.sum().backward()
    # Scoring must not leak gradients into the frozen embedding table...
    assert linker.model.embedding.entity.weight.grad is None
    # ...while the scoring head and the cell representation do train.
    match_grads = [p.grad for p in linker.match.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in match_grads)
    assert cell_hidden.grad is not None and np.abs(cell_hidden.grad).sum() > 0


def test_turl_linker_ablation_flags(linking):
    context, _, train, _ = linking
    linker = TURLEntityLinker(context.clone_model(), context.linearizer,
                              context.kb, all_types(),
                              use_description=False, use_types=False)
    entity_id = next(iter(context.kb.entities))
    representation = linker.candidate_representation(entity_id).data
    dim = context.config.dim
    # Description and type thirds are zeroed.
    assert np.allclose(representation[dim:], 0.0)
    assert not np.allclose(representation[:dim], 0.0)
