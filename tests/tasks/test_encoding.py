"""Tests for shared task encoding utilities (ablations, column pooling)."""

import numpy as np
import pytest

from repro.core.batching import collate
from repro.nn import Tensor
from repro.tasks.encoding import (
    InputAblation,
    apply_ablation_to_batch,
    column_representation,
    strip_metadata,
)
from repro.text.vocab import MASK_ID, PAD_ID


@pytest.fixture(scope="module")
def encoded(request):
    context = request.getfixturevalue("context")
    table = context.splits.train[0]
    instance = context.linearizer.encode(table)
    return context, table, instance


def test_ablation_factories():
    assert InputAblation.full().use_metadata
    only_mention = InputAblation.only_mention()
    assert not only_mention.use_metadata
    assert not only_mention.use_entity_embedding
    assert only_mention.use_mention
    only_embedding = InputAblation.only_entity_embedding()
    assert not only_embedding.use_mention
    assert only_embedding.use_entity_embedding


def test_strip_metadata_blanks_text(encoded):
    _, table, _ = encoded
    stripped = strip_metadata(table)
    assert stripped.caption_text() == ""
    assert all(h == "" for h in stripped.headers)
    # The original table is untouched.
    assert table.caption_text() != ""


def test_apply_ablation_masks_entities(encoded):
    context, _, instance = encoded
    batch = collate([instance])
    apply_ablation_to_batch(batch, InputAblation.without_entity_embedding())
    real = batch["entity_mask"] & (batch["entity_ids"] != PAD_ID)
    assert (batch["entity_ids"][real] == MASK_ID).all()


def test_apply_ablation_masks_mentions(encoded):
    context, _, instance = encoded
    batch = collate([instance])
    apply_ablation_to_batch(batch, InputAblation.only_metadata())
    np.testing.assert_array_equal(batch["mention_masked"], batch["entity_mask"])


def test_column_representation_shape_and_content(encoded):
    context, table, instance = encoded
    batch = collate([instance])
    token_hidden, entity_hidden = context.model.encode(batch)
    col = table.entity_columns()[0]
    pooled = column_representation(token_hidden[0], entity_hidden[0], instance, col)
    assert pooled.shape == (2 * context.config.dim,)
    assert not np.allclose(pooled.data, 0.0)


def test_column_representation_missing_header_is_zero(encoded):
    context, table, _ = encoded
    stripped = strip_metadata(table)
    instance = context.linearizer.encode(stripped)
    batch = collate([instance])
    token_hidden, entity_hidden = context.model.encode(batch)
    col = table.entity_columns()[0]
    pooled = column_representation(token_hidden[0], entity_hidden[0], instance, col)
    dim = context.config.dim
    np.testing.assert_allclose(pooled.data[:dim], 0.0)
    assert not np.allclose(pooled.data[dim:], 0.0)


def test_column_representation_gradient_flows(encoded):
    context, table, instance = encoded
    batch = collate([instance])
    token_hidden, entity_hidden = context.model.encode(batch)
    col = table.entity_columns()[0]
    pooled = column_representation(token_hidden[0], entity_hidden[0], instance, col)
    pooled.sum().backward()
    assert context.model.embedding.word.weight.grad is not None
    context.model.zero_grad()
