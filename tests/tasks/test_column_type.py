"""Tests for column type annotation: labels, TURL annotator, Sherlock."""

import numpy as np
import pytest

from repro.baselines.sherlock import SherlockModel, column_features
from repro.tasks.column_type import (
    TURLColumnTypeAnnotator,
    build_column_type_dataset,
    column_types,
)
from repro.tasks.encoding import InputAblation


@pytest.fixture(scope="module")
def column_dataset(request):
    context = request.getfixturevalue("context")
    dataset = build_column_type_dataset(
        context.kb, context.splits.train, context.splits.validation,
        context.splits.test, min_type_instances=5)
    return context, dataset


def test_column_types_common_across_entities(column_dataset):
    context, dataset = column_dataset
    instance = dataset.train[0]
    types = column_types(instance.table, instance.col, context.kb)
    for entity_id in (c.entity_id for c in
                      instance.table.columns[instance.col].linked_cells()):
        assert types <= set(context.kb.types_of(entity_id))


def test_column_types_requires_min_linked(column_dataset):
    context, dataset = column_dataset
    instance = dataset.train[0]
    assert column_types(instance.table, instance.col, context.kb,
                        min_linked=10**6) is None


def test_dataset_type_vocabulary_filtered(column_dataset):
    _, dataset = column_dataset
    assert dataset.type_names
    counts = {}
    for instance in dataset.train:
        for type_name in instance.types:
            counts[type_name] = counts.get(type_name, 0) + 1
    for type_name in dataset.type_names:
        assert counts[type_name] >= 5


def test_label_vector_roundtrip(column_dataset):
    _, dataset = column_dataset
    instance = dataset.train[0]
    vector = dataset.label_vector(instance)
    recovered = {dataset.type_names[i] for i in np.where(vector == 1)[0]}
    assert recovered == instance.types & set(dataset.type_names)


def test_turl_annotator_learns(column_dataset):
    context, dataset = column_dataset
    annotator = TURLColumnTypeAnnotator(context.clone_model(), context.linearizer,
                                        len(dataset.type_names))
    losses = annotator.finetune(dataset, epochs=2, max_instances=60)
    assert losses[-1] < losses[0]
    metrics = annotator.evaluate(dataset.test[:30], dataset)
    assert metrics.f1 > 0.5  # small pipeline still separates the easy types


def test_turl_annotator_always_predicts_something(column_dataset):
    context, dataset = column_dataset
    annotator = TURLColumnTypeAnnotator(context.clone_model(), context.linearizer,
                                        len(dataset.type_names))
    predictions = annotator.predict(dataset.test[:10], dataset)
    assert all(predictions)


def test_turl_annotator_per_type_report(column_dataset):
    context, dataset = column_dataset
    annotator = TURLColumnTypeAnnotator(context.clone_model(), context.linearizer,
                                        len(dataset.type_names))
    annotator.finetune(dataset, epochs=1, max_instances=40)
    report = annotator.per_type_f1(dataset.validation[:20], dataset,
                                   dataset.type_names[:3])
    assert set(report) == set(dataset.type_names[:3])
    assert all(0.0 <= v <= 1.0 for v in report.values())


def test_ablation_only_metadata_ignores_cells(column_dataset):
    """With cells fully masked, shuffling cell contents cannot change logits."""
    context, dataset = column_dataset
    annotator = TURLColumnTypeAnnotator(context.clone_model(), context.linearizer,
                                        len(dataset.type_names),
                                        ablation=InputAblation.only_metadata())
    annotator.model.eval()
    instance = dataset.test[0]
    import copy
    logits_a = annotator.column_logits(instance.table, [instance.col]).data
    shuffled = copy.deepcopy(instance.table)
    for column in shuffled.columns:
        if column.is_entity:
            for cell in column.cells:
                cell.mention = "xyzzy"  # links untouched: structure preserved
    logits_b = annotator.column_logits(shuffled, [instance.col]).data
    np.testing.assert_allclose(logits_a, logits_b, atol=1e-9)


def test_sherlock_features_shape_and_nan_free():
    features = column_features(["Alpha Beta", "Gamma", "42"])
    assert features.ndim == 1
    assert np.isfinite(features).all()
    empty = column_features([])
    assert empty.shape == features.shape
    assert np.allclose(empty, 0.0)


def test_sherlock_fits_and_beats_chance(column_dataset):
    _, dataset = column_dataset
    model = SherlockModel(len(dataset.type_names), embedding_dim=16)
    losses = model.fit(dataset, epochs=8)
    assert losses[-1] < losses[0]
    metrics = model.evaluate(dataset.test[:30], dataset)
    assert metrics.f1 > 0.3
