"""Tests for row population: instances, candidate generation, rankers."""

import numpy as np
import pytest

from repro.baselines.entitables import EntiTablesRowPopulator
from repro.baselines.table2vec import Table2VecRowPopulator, train_entity_embeddings
from repro.tasks.row_population import (
    PopulationCandidateGenerator,
    TURLRowPopulator,
    build_population_instances,
    partial_table,
)


@pytest.fixture(scope="module")
def population(request):
    context = request.getfixturevalue("context")
    generator = PopulationCandidateGenerator(context.splits.train, k_tables=15)
    return context, generator


def test_instances_split_seed_and_targets(population):
    context, _ = population
    instances = build_population_instances(context.splits.train, n_seed=1,
                                           min_subject_entities=3)
    assert instances
    for instance in instances[:20]:
        assert len(instance.seed_entities) == 1
        assert instance.seed_entities[0] not in instance.target_entities
        assert instance.target_entities


def test_instances_zero_seed(population):
    context, _ = population
    instances = build_population_instances(context.splits.train, n_seed=0,
                                           min_subject_entities=3)
    for instance in instances[:20]:
        assert instance.seed_entities == []
        assert len(instance.target_entities) > 3


def test_partial_table_contains_only_seeds(population):
    context, _ = population
    instances = build_population_instances(context.splits.train, n_seed=1,
                                           min_subject_entities=3)
    instance = instances[0]
    partial = partial_table(instance)
    assert partial.n_columns == 1
    assert [c.entity_id for c in partial.columns[0].cells] == instance.seed_entities
    assert partial.caption_text() == instance.caption


def test_candidate_generator_excludes_seeds(population):
    context, generator = population
    instances = build_population_instances(context.splits.train, n_seed=1,
                                           min_subject_entities=3)
    instance = instances[0]
    candidates = generator.candidates_for(instance)
    assert instance.seed_entities[0] not in candidates
    assert len(candidates) == len(set(candidates))


def test_candidate_recall_bounded(population):
    context, generator = population
    instances = build_population_instances(context.splits.test, n_seed=0,
                                           min_subject_entities=5)
    recall = generator.recall(instances)
    assert 0.0 <= recall <= 1.0


def test_entitables_seed_vs_caption_modes(population):
    context, generator = population
    populator = EntiTablesRowPopulator(context.splits.train)
    for n_seed in (0, 1):
        instances = build_population_instances(context.splits.test, n_seed=n_seed,
                                               min_subject_entities=5)
        if not instances:
            continue
        metrics = populator.evaluate(instances[:10], generator)
        assert metrics.task == "row_population"
        assert 0.0 <= metrics.values["map"] <= 1.0


def test_table2vec_requires_seeds(population):
    context, generator = population
    populator = Table2VecRowPopulator(
        train_entity_embeddings(context.splits.train, epochs=1))
    no_seed = build_population_instances(context.splits.test, n_seed=0,
                                         min_subject_entities=5)
    assert populator.evaluate(no_seed[:5], generator) is None
    one_seed = build_population_instances(context.splits.test, n_seed=1,
                                          min_subject_entities=5)
    if one_seed:
        metrics = populator.evaluate(one_seed[:5], generator)
        assert metrics is not None and 0.0 <= metrics.primary_value <= 1.0


def test_turl_populator_ranks_all_candidates(population):
    context, generator = population
    instances = build_population_instances(context.splits.train, n_seed=1,
                                           min_subject_entities=3)
    populator = TURLRowPopulator(context.clone_model(), context.linearizer)
    losses = populator.finetune(instances[:30], generator, epochs=1)
    assert losses
    candidates = generator.candidates_for(instances[0])
    ranked = populator.rank(instances[0], candidates)
    assert sorted(ranked) == sorted(candidates)
    assert populator.rank(instances[0], []) == []
