"""Tests for schema augmentation: header vocab, kNN baseline, TURL."""

import numpy as np
import pytest

from repro.baselines.entitables import KNNSchemaAugmenter
from repro.tasks.schema_augmentation import (
    TURLSchemaAugmenter,
    build_header_vocabulary,
    build_schema_instances,
    normalize_header,
)


@pytest.fixture(scope="module")
def schema(request):
    context = request.getfixturevalue("context")
    vocabulary = build_header_vocabulary(context.splits.train, min_tables=2)
    return context, vocabulary


def test_normalize_header():
    assert normalize_header("  Covered   Location ") == "covered location"
    assert normalize_header("CLUB") == "club"


def test_header_vocabulary_min_tables(schema):
    context, vocabulary = schema
    assert vocabulary
    from collections import Counter
    counts = Counter()
    for table in context.splits.train:
        for header in {normalize_header(h) for h in table.headers if h.strip()}:
            counts[header] += 1
    for header in vocabulary:
        assert counts[header] >= 2


def test_schema_instances_targets_in_vocab(schema):
    context, vocabulary = schema
    instances = build_schema_instances(context.splits.test, vocabulary, n_seed=1)
    assert instances
    for instance in instances[:20]:
        assert len(instance.seed_headers) == 1
        assert instance.target_headers <= set(vocabulary)
        assert not (instance.target_headers & set(instance.seed_headers))


def test_knn_rank_excludes_seeds(schema):
    context, vocabulary = schema
    knn = KNNSchemaAugmenter(context.splits.train, k=5)
    instances = build_schema_instances(context.splits.test, vocabulary, n_seed=1)
    instance = instances[0]
    ranked = knn.rank(instance, vocabulary)
    assert not (set(instance.seed_headers) & set(ranked))
    assert set(ranked) <= set(vocabulary)


def test_knn_support_caption(schema):
    context, vocabulary = schema
    knn = KNNSchemaAugmenter(context.splits.train, k=5)
    instances = build_schema_instances(context.splits.test, vocabulary, n_seed=0)
    support = knn.best_support_caption(instances[0])
    assert support is None or isinstance(support, str)


def test_knn_map_reasonable(schema):
    context, vocabulary = schema
    knn = KNNSchemaAugmenter(context.splits.train)
    instances = build_schema_instances(context.splits.test, vocabulary, n_seed=0)
    metrics = knn.evaluate(instances[:15], vocabulary)
    assert metrics.task == "schema_augmentation"
    assert 0.0 <= metrics.values["map"] <= 1.0


def test_turl_augmenter_finetunes_and_ranks(schema):
    context, vocabulary = schema
    train = build_schema_instances(context.splits.train, vocabulary, n_seed=0)
    test = build_schema_instances(context.splits.test, vocabulary, n_seed=0)
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary)
    losses = augmenter.finetune(train[:60], epochs=2)
    assert losses[-1] < losses[0]
    ranked = augmenter.rank(test[0])
    assert set(ranked) <= set(vocabulary)
    metrics = augmenter.evaluate(test[:10])
    assert 0.0 <= metrics.primary_value <= 1.0


def test_turl_augmenter_header_embeddings_initialized(schema):
    context, vocabulary = schema
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary)
    # Initialized from word embeddings: rows should be non-zero for headers
    # whose tokens are in vocabulary.
    norms = np.linalg.norm(augmenter.header_embeddings.data, axis=1)
    assert (norms > 0).mean() > 0.9


def test_turl_augmenter_ap_per_query(schema):
    context, vocabulary = schema
    test = build_schema_instances(context.splits.test, vocabulary, n_seed=1)
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary)
    ap = augmenter.average_precision_for(test[0])
    assert 0.0 <= ap <= 1.0
