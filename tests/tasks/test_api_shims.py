"""Deprecation shims of the old task-evaluation API.

Each renamed entry point (``evaluate_map`` / ``evaluate_precision_at`` /
``finetune(learning_rate=...)``) must keep its exact legacy return shape,
emit a ``DeprecationWarning``, and agree with the canonical
``evaluate(...) -> TaskMetrics`` result.
"""

import pytest

from repro.baselines.entitables import EntiTablesRowPopulator, KNNSchemaAugmenter
from repro.tasks.cell_filling import (
    CellFillingCandidates,
    HeaderStatistics,
    TURLCellFiller,
    build_filling_instances,
)
from repro.tasks.row_population import (
    PopulationCandidateGenerator,
    build_population_instances,
)
from repro.tasks.schema_augmentation import (
    TURLSchemaAugmenter,
    build_header_vocabulary,
    build_schema_instances,
)


@pytest.fixture(scope="module")
def population(request):
    context = request.getfixturevalue("context")
    generator = PopulationCandidateGenerator(context.splits.train)
    instances = build_population_instances(context.splits.test, n_seed=1,
                                           min_subject_entities=3)
    return context, generator, instances


def test_evaluate_map_shim_warns_and_matches(population):
    context, generator, instances = population
    populator = EntiTablesRowPopulator(context.splits.train)
    canonical = populator.evaluate(instances[:8], generator)
    with pytest.warns(DeprecationWarning):
        legacy = populator.evaluate_map(instances[:8], generator)  # lint: disable=API001(exercises the deprecation shim on purpose)
    assert legacy == canonical.primary_value == canonical.values["map"]


def test_schema_evaluate_map_shim_warns_and_matches(request):
    context = request.getfixturevalue("context")
    vocabulary = build_header_vocabulary(context.splits.train, min_tables=2)
    instances = build_schema_instances(context.splits.test, vocabulary,
                                       n_seed=0)
    knn = KNNSchemaAugmenter(context.splits.train)
    canonical = knn.evaluate(instances[:8], vocabulary)
    with pytest.warns(DeprecationWarning):
        legacy = knn.evaluate_map(instances[:8], vocabulary)  # lint: disable=API001(exercises the deprecation shim on purpose)
    assert legacy == canonical.primary_value


def test_evaluate_precision_at_shim_warns_and_matches(request):
    context = request.getfixturevalue("context")
    instances = build_filling_instances(context.splits.test)[:10]
    statistics = HeaderStatistics(context.splits.train)
    candidates = CellFillingCandidates(context.splits.train, statistics)
    filler = TURLCellFiller(context.model, context.linearizer)
    canonical = filler.evaluate(instances, candidates)
    with pytest.warns(DeprecationWarning):
        legacy = filler.evaluate_precision_at(instances, candidates)  # lint: disable=API001(exercises the deprecation shim on purpose)
    assert set(legacy) == {1, 3, 5, 10}
    assert all(legacy[k] == canonical.values[f"p@{k}"] for k in legacy)


def test_finetune_learning_rate_alias_warns(request):
    context = request.getfixturevalue("context")
    vocabulary = build_header_vocabulary(context.splits.train, min_tables=2)
    instances = build_schema_instances(context.splits.train, vocabulary,
                                       n_seed=0)[:2]
    augmenter = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                    vocabulary)
    with pytest.warns(DeprecationWarning):
        deprecated = augmenter.finetune(instances, epochs=1, learning_rate=1e-3)  # lint: disable=API001(exercises the deprecated keyword on purpose)
    aliased = TURLSchemaAugmenter(context.clone_model(), context.linearizer,
                                  vocabulary)
    canonical = aliased.finetune(instances, epochs=1, lr=1e-3)
    assert deprecated == canonical
