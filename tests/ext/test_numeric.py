"""Tests for the numerical-attributes extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.numeric import (
    NumericBinner,
    TURLValuePredictor,
    build_numeric_instances,
    is_numeric_column,
    parse_numeric,
)


@pytest.mark.parametrize("text,expected", [
    ("1984", 1984.0),
    ("  42 ", 42.0),
    ("3.5", 3.5),
    ("1,234", 1234.0),
    ("score: -7", -7.0),
    ("n/a", None),
    ("", None),
    ("--", None),
])
def test_parse_numeric(text, expected):
    assert parse_numeric(text) == expected


def test_is_numeric_column():
    assert is_numeric_column(["1990", "1991", "1992"])
    assert not is_numeric_column(["alpha", "beta", "1990"])
    assert not is_numeric_column([])
    # Threshold behavior.
    assert is_numeric_column(["1", "2", "3", "x"], threshold=0.7)


def test_binner_fits_quantiles():
    binner = NumericBinner(n_bins=4).fit(list(range(100)))
    assert binner.n_classes == 4
    assert binner.transform(0) == 0
    assert binner.transform(99) == binner.n_classes - 1
    # Monotone in the value.
    bins = [binner.transform(v) for v in range(100)]
    assert bins == sorted(bins)


def test_binner_bin_range():
    binner = NumericBinner(n_bins=4).fit(list(range(100)))
    low, high = binner.bin_range(0)
    assert low == -np.inf
    low, high = binner.bin_range(binner.n_classes - 1)
    assert high == np.inf


def test_binner_unfitted_raises():
    with pytest.raises(RuntimeError):
        NumericBinner().transform(1.0)
    with pytest.raises(ValueError):
        NumericBinner(n_bins=1)
    with pytest.raises(ValueError):
        NumericBinner(n_bins=8).fit([1.0, 2.0])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=10, max_size=200))
def test_property_binner_covers_all_values(values):
    binner = NumericBinner(n_bins=4).fit(values)
    for value in values:
        bin_id = binner.transform(value)
        assert 0 <= bin_id < binner.n_classes
        low, high = binner.bin_range(bin_id)
        assert low <= value <= high or np.isclose(value, low) or np.isclose(value, high)


def test_build_numeric_instances(context):
    instances = build_numeric_instances(context.splits.train)
    assert instances
    for instance in instances[:20]:
        column = instance.table.columns[instance.col]
        assert not column.is_entity
        assert parse_numeric(column.cells[instance.row]) == instance.value


def test_value_predictor_learns_era(context):
    """Film years are predictable from row context (director era)."""
    instances = build_numeric_instances(context.splits.train)
    values = [i.value for i in instances]
    binner = NumericBinner(n_bins=4).fit(values)
    predictor = TURLValuePredictor(context.clone_model(), context.linearizer,
                                   binner)
    losses = predictor.finetune(instances, epochs=2, max_instances=80)
    assert losses[-1] < losses[0]
    held_out = build_numeric_instances(context.splits.test)[:30]
    if held_out:
        accuracy = predictor.accuracy(held_out)
        chance = 1.0 / binner.n_classes
        assert accuracy >= chance * 0.5  # sanity floor; usually well above
        assert predictor.within_one_bin(held_out) >= accuracy
