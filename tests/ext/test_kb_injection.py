"""Tests for the ERNIE-style KB-injection pre-training extension."""

import numpy as np
import pytest

from repro.core.batching import collate
from repro.ext.kb_injection import NO_RELATION, KBInjectionPretrainer, RelationInjectionHead
from repro.nn import Tensor


@pytest.fixture(scope="module")
def injector(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:16]
    pretrainer = KBInjectionPretrainer(
        context.fresh_model(seed=2), instances, context.candidate_builder,
        context.kb, config=context.config, seed=0)
    return context, instances, pretrainer


def test_relation_head_shapes(rng):
    head = RelationInjectionHead(dim=16, n_relations=5, rng=rng)
    left = Tensor(np.random.default_rng(0).normal(size=(7, 16)))
    right = Tensor(np.random.default_rng(1).normal(size=(7, 16)))
    logits = head(left, right)
    assert logits.shape == (7, 6)  # +1 for NO_RELATION


def test_pair_labels_distant_supervision(injector, rng):
    context, instances, pretrainer = injector
    batch = collate(instances[:4])
    kb_ids = [KBInjectionPretrainer._padded_kb_ids(i, batch["entity_ids"].shape[1])
              for i in instances[:4]]
    pairs = pretrainer._pair_labels(batch, kb_ids, rng)
    assert pairs, "corpus rows should contain related pairs"
    positives = [p for p in pairs if p[3] != NO_RELATION]
    assert positives
    # Verify a positive against the KB.
    b, i, j, label = positives[0]
    relation = pretrainer.relation_names[label - 1]
    assert context.kb.has_fact(kb_ids[b][i], relation, kb_ids[b][j])
    # Negatives are same-row unrelated pairs.
    for b, i, j, label in pairs:
        if label == NO_RELATION:
            assert not context.kb.relations_between(kb_ids[b][i], kb_ids[b][j])


def test_injection_step_adds_relation_loss(injector):
    context, instances, pretrainer = injector
    pretrainer._ensure_optimizer(10)
    batch = collate(instances[:4])
    kb_ids = [KBInjectionPretrainer._padded_kb_ids(i, batch["entity_ids"].shape[1])
              for i in instances[:4]]
    result = pretrainer.step(batch, kb_ids=kb_ids)
    assert result["relation"] > 0
    assert result["loss"] > result["mlm"]


def test_injection_step_without_kb_ids_degrades(injector):
    context, instances, pretrainer = injector
    pretrainer._ensure_optimizer(10)
    batch = collate(instances[:4])
    result = pretrainer.step(batch)
    assert result["relation"] == 0.0
    assert result["loss"] > 0


def test_train_with_kb_reduces_loss(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:16]
    pretrainer = KBInjectionPretrainer(
        context.fresh_model(seed=3), instances, context.candidate_builder,
        context.kb, config=context.config, seed=0)
    losses = pretrainer.train_with_kb(n_epochs=6)
    assert np.mean(losses[-3:]) < np.mean(losses[:3])
    assert any(l > 0 for l in pretrainer.relation_losses)


def test_relation_head_parameters_are_optimized(request):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:8]
    pretrainer = KBInjectionPretrainer(
        context.fresh_model(seed=4), instances, context.candidate_builder,
        context.kb, config=context.config, seed=0)
    before = pretrainer.relation_head.classifier.weight.data.copy()
    pretrainer.train_with_kb(n_epochs=1)
    assert not np.allclose(before, pretrainer.relation_head.classifier.weight.data)
