"""Tests for the TAPAS-style flat-text column typer."""

import numpy as np
import pytest

from repro.ext.tapas_baseline import TapasStyleColumnTyper
from repro.tasks.column_type import build_column_type_dataset


@pytest.fixture(scope="module")
def tapas_setup(request):
    context = request.getfixturevalue("context")
    dataset = build_column_type_dataset(
        context.kb, context.splits.train, context.splits.validation,
        context.splits.test, min_type_instances=5)
    typer = TapasStyleColumnTyper(context.tokenizer, len(dataset.type_names),
                                  dim=32, num_layers=1, num_heads=2,
                                  intermediate_dim=64)
    return context, dataset, typer


def test_flatten_respects_token_budget(tapas_setup):
    context, dataset, typer = tapas_setup
    table = dataset.train[0].table
    ids, rows, cols, positions = typer._flatten(table)
    assert len(ids) <= typer.max_tokens
    assert len(ids) == len(rows) == len(cols)
    assert rows.max() <= typer.max_rows + 1
    assert cols.max() <= typer.max_columns + 1


def test_flatten_column_positions_point_at_column(tapas_setup):
    context, dataset, typer = tapas_setup
    table = dataset.train[0].table
    ids, rows, cols, positions = typer._flatten(table)
    for col, token_positions in positions.items():
        for position in token_positions:
            assert cols[position] == col + 1


def test_column_logits_shape(tapas_setup):
    context, dataset, typer = tapas_setup
    instance = dataset.train[0]
    logits = typer.column_logits(instance.table, [instance.col])
    assert logits.shape == (1, len(dataset.type_names))


def test_tapas_learns_column_types(tapas_setup):
    context, dataset, typer = tapas_setup
    losses = typer.fit(dataset, epochs=2, max_instances=60)
    assert losses[-1] < losses[0]
    metrics = typer.evaluate(dataset.test[:20], dataset)
    assert metrics.f1 > 0.3


def test_tapas_predictions_nonempty(tapas_setup):
    context, dataset, typer = tapas_setup
    predictions = typer.predict(dataset.test[:5], dataset)
    assert len(predictions) == 5
    assert all(predictions)
