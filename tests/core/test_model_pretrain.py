"""Tests for the TURL model, pre-training loop and checkpointing."""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.batching import collate
from repro.core.candidates import CandidateBuilder
from repro.core.masking import IGNORE, MaskingPolicy
from repro.core.model import TURLModel
from repro.core.pretrain import Pretrainer, load_checkpoint, save_checkpoint
from repro.text.vocab import MASK_ID


@pytest.fixture(scope="module")
def pipeline(request, small_config):
    context = request.getfixturevalue("context")
    instances = context.instances_for(context.splits.train)[:24]
    return context, instances


def test_model_encode_shapes(pipeline):
    context, instances = pipeline
    batch = collate(instances[:4])
    token_hidden, entity_hidden = context.model.encode(batch)
    assert token_hidden.shape == batch["token_ids"].shape + (context.config.dim,)
    assert entity_hidden.shape == batch["entity_ids"].shape + (context.config.dim,)


def test_model_mlm_logits_cover_vocab(pipeline):
    context, instances = pipeline
    batch = collate(instances[:2])
    token_hidden, _ = context.model.encode(batch)
    logits = context.model.mlm_logits(token_hidden)
    assert logits.shape[-1] == context.model.vocab_size


def test_model_mer_logits_cover_candidates(pipeline):
    context, instances = pipeline
    batch = collate(instances[:2])
    _, entity_hidden = context.model.encode(batch)
    candidates = np.array([5, 6, 7, 8])
    logits = context.model.mer_logits(entity_hidden, candidates)
    assert logits.shape == entity_hidden.shape[:2] + (4,)


def test_visibility_isolates_invisible_cells(pipeline):
    """With a single encoder layer, changing an entity invisible to a target
    cell must not change the target's representation.  (With stacked layers
    information flows multi-hop through shared neighbors — by design, as in
    the paper — so the strict test needs one layer.)"""
    import dataclasses
    context, instances = pipeline
    instance = next(i for i in instances if i.n_entities >= 7)
    config = dataclasses.replace(context.config, num_layers=1)
    model = TURLModel(context.model.vocab_size, context.model.entity_vocab_size,
                      config, seed=5)
    model.eval()
    batch = collate([instance])
    _, hidden_a = model.encode(batch)

    # Find two cells in different rows AND columns.
    target = other = None
    for i in range(1, instance.n_entities):
        for j in range(1, instance.n_entities):
            if (instance.entity_row[i] != instance.entity_row[j]
                    and instance.entity_col[i] != instance.entity_col[j]):
                target, other = i, j
                break
        if target is not None:
            break
    assert target is not None

    modified = {k: v.copy() for k, v in batch.items()}
    modified["entity_ids"][0, other] = MASK_ID
    _, hidden_b = model.encode(modified)
    np.testing.assert_allclose(hidden_a.data[0, target], hidden_b.data[0, target],
                               atol=1e-10)
    # ...while the perturbed cell itself does change.
    assert not np.allclose(hidden_a.data[0, other], hidden_b.data[0, other])


def test_no_visibility_leaks_everywhere(pipeline):
    """Without the visibility mask the same perturbation reaches every cell."""
    context, instances = pipeline
    instance = next(i for i in instances if i.n_entities >= 7)
    context.model.eval()
    batch = collate([instance])
    _, hidden_a = context.model.encode(batch, use_visibility=False)
    modified = {k: v.copy() for k, v in batch.items()}
    modified["entity_ids"][0, 1] = MASK_ID
    _, hidden_b = context.model.encode(modified, use_visibility=False)
    changed = ~np.isclose(hidden_a.data[0], hidden_b.data[0], atol=1e-12)
    assert changed.any(axis=-1).mean() > 0.9


def test_pretrainer_step_returns_losses(pipeline, rng):
    context, instances = pipeline
    model = context.fresh_model(seed=3)
    pretrainer = Pretrainer(model, instances, context.candidate_builder,
                            context.config, seed=1)
    pretrainer._ensure_optimizer(10)
    batch = collate(instances[:4])
    result = pretrainer.step(batch)
    assert result["loss"] > 0
    assert result["mlm"] > 0
    assert result["mer"] > 0


def test_pretraining_reduces_loss(pipeline):
    context, instances = pipeline
    model = context.fresh_model(seed=4)
    pretrainer = Pretrainer(model, instances, context.candidate_builder,
                            context.config, seed=1)
    stats = pretrainer.train(n_epochs=10)
    first = np.mean(stats.losses[:3])
    last = np.mean(stats.losses[-3:])
    assert last < first * 0.95


def test_probe_runs_and_bounded(pipeline):
    context, instances = pipeline
    pretrainer = Pretrainer(context.model, instances, context.candidate_builder,
                            context.config)
    accuracy = pretrainer.evaluate_object_prediction(instances[:6])
    assert 0.0 <= accuracy <= 1.0


def test_pretrained_beats_fresh_on_probe(pipeline):
    """Pre-training must actually help the recovery probe."""
    context, instances = pipeline
    fresh = Pretrainer(context.fresh_model(seed=9), instances,
                       context.candidate_builder, context.config)
    trained = Pretrainer(context.model, instances, context.candidate_builder,
                         context.config)
    eval_instances = context.instances_for(context.splits.validation)[:10]
    assert (trained.evaluate_object_prediction(eval_instances)
            >= fresh.evaluate_object_prediction(eval_instances))


def test_checkpoint_roundtrip(pipeline, tmp_path):
    context, instances = pipeline
    directory = str(tmp_path / "ckpt")
    save_checkpoint(directory, context.model, context.tokenizer,
                    context.entity_vocab)
    model, tokenizer, entity_vocab = load_checkpoint(directory)
    assert model.num_parameters() == context.model.num_parameters()
    assert len(entity_vocab) == len(context.entity_vocab)
    batch = collate(instances[:2])
    context.model.eval()
    model.eval()
    a, _ = context.model.encode(batch)
    b, _ = model.encode(batch)
    np.testing.assert_allclose(a.data, b.data, atol=1e-12)


def test_clone_model_independent(pipeline):
    context, _ = pipeline
    clone = context.clone_model()
    clone.mlm_project.weight.data[:] = 0.0
    assert not np.allclose(context.model.mlm_project.weight.data, 0.0)


def test_config_validation():
    with pytest.raises(ValueError):
        TURLConfig(dim=30, num_heads=4).validate()
    with pytest.raises(ValueError):
        TURLConfig(mer_probability=1.5).validate()
