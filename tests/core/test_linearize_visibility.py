"""Tests for table linearization and the visibility matrix."""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.linearize import (
    ETYPE_OBJECT,
    ETYPE_SUBJECT,
    ETYPE_TOPIC,
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    Linearizer,
)
from repro.core.visibility import build_visibility, visibility_from_structure
from repro.data.table import Column, EntityCell, Table
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, PAD_ID, Vocabulary


@pytest.fixture(scope="module")
def tokenizer():
    return WordPieceTokenizer.train(
        ["national film awards recipients year film director language club city"] * 3,
        vocab_size=300, min_frequency=1)


@pytest.fixture(scope="module")
def entity_vocab():
    return Vocabulary([f"ent_{i}" for i in range(20)])


@pytest.fixture(scope="module")
def sample_table():
    return Table(
        table_id="t1",
        page_title="National Film Awards",
        section_title="Recipients",
        caption="recipients of the award",
        topic_entity="ent_0",
        subject_column=0,
        columns=[
            Column("Year", "entity", [
                EntityCell("ent_1", "15th"), EntityCell("ent_2", "16th"),
                EntityCell("ent_3", "17th"),
            ]),
            Column("Director", "entity", [
                EntityCell("ent_4", "Satyajit"), EntityCell("ent_5", "Mrinal"),
                EntityCell(None, "Unknown"),
            ], relation="ceremony.winner"),
            Column("Film", "entity", [
                EntityCell("ent_7", "Chiriyakhana"), EntityCell("ent_8", "Bhuvan"),
                EntityCell("ent_9", "Goopy"),
            ], relation="ceremony.best_film"),
            Column("Notes", "text", ["a", "b", "c"]),
        ],
    )


@pytest.fixture(scope="module")
def linearizer(tokenizer, entity_vocab):
    return Linearizer(tokenizer, entity_vocab, TURLConfig(max_caption_tokens=12))


def test_linearize_counts(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    # topic + 9 cells (3 rows x 3 entity columns)
    assert instance.n_entities == 10
    assert instance.entity_kind[0] == KIND_TOPIC
    assert (instance.entity_kind[1:] == KIND_CELL).all()
    assert instance.n_tokens > 0
    assert instance.length == instance.n_tokens + instance.n_entities


def test_linearize_entity_types(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    assert instance.entity_type[0] == ETYPE_TOPIC
    # Row-major scan: first cell of each row is the subject column.
    cells = instance.entity_type[1:].reshape(3, 3)
    assert (cells[:, 0] == ETYPE_SUBJECT).all()
    assert (cells[:, 1:] == ETYPE_OBJECT).all()


def test_linearize_rows_and_cols(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    rows = instance.entity_row[1:].reshape(3, 3)
    cols = instance.entity_col[1:].reshape(3, 3)
    assert (rows == np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2]])).all()
    assert (cols == np.array([[0, 1, 2]] * 3)).all()


def test_linearize_unlinked_cell_gets_pad_entity(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    # Row 2 director cell is unlinked.
    flat_index = 1 + 2 * 3 + 1
    assert instance.entity_ids[flat_index] == PAD_ID
    assert instance.entity_kb_ids[flat_index] is None


def test_linearize_mentions_padded(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    assert instance.mention_ids.shape == (10, TURLConfig().max_mention_tokens)
    # Mention of the first cell is non-empty.
    assert (instance.mention_ids[1] != PAD_ID).any()


def test_linearize_text_column_contributes_header_only(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    # "Notes" header tokens present with col index 3; no entities in col 3.
    header_cols = set(instance.token_col[instance.token_kind == KIND_HEADER])
    assert 3 in header_cols
    assert 3 not in set(instance.entity_col)


def test_linearize_truncates_caption(tokenizer, entity_vocab, sample_table):
    tight = Linearizer(tokenizer, entity_vocab, TURLConfig(max_caption_tokens=4))
    instance = tight.encode(sample_table)
    assert (instance.token_kind == KIND_CAPTION).sum() == 4


def test_linearize_truncates_rows(tokenizer, entity_vocab, sample_table):
    tight = Linearizer(tokenizer, entity_vocab, TURLConfig(max_rows=2))
    instance = tight.encode(sample_table)
    assert instance.entity_row.max() == 1


def test_extra_entity_slots(linearizer, sample_table):
    instance = linearizer.encode(sample_table, extra_entity_slots=2)
    assert instance.n_entities == 12
    assert (instance.entity_ids[-2:] == MASK_ID).all()
    assert (instance.entity_row[-2:] == 3).all()  # fresh row below the table
    assert instance.entity_kb_ids[-1] is None


def test_visibility_symmetric(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    visibility = build_visibility(instance)
    assert (visibility == visibility.T).all()
    assert visibility.diagonal().all()


def test_visibility_caption_and_topic_global(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    visibility = build_visibility(instance)
    kinds = instance.element_kinds()
    caption_rows = np.where(kinds == KIND_CAPTION)[0]
    topic_rows = np.where(kinds == KIND_TOPIC)[0]
    assert visibility[caption_rows].all()
    assert visibility[topic_rows].all()


def test_visibility_cell_to_cell_rules(linearizer, sample_table):
    """Paper Example 4.1: [Satyajit] must not see [Pratidwandi]-style cells —
    entities in a different row AND different column are invisible."""
    instance = linearizer.encode(sample_table)
    visibility = build_visibility(instance)
    nt = instance.n_tokens
    # Entity flat layout: topic at 0, then 3x3 row-major cells.
    def pos(row, col):
        return nt + 1 + row * 3 + col

    # Same row: visible.
    assert visibility[pos(0, 1), pos(0, 2)]
    # Same column: visible.
    assert visibility[pos(0, 1), pos(2, 1)]
    # Different row and column: invisible.
    assert not visibility[pos(0, 1), pos(1, 2)]
    assert not visibility[pos(2, 0), pos(0, 2)]


def test_visibility_header_sees_own_column_cells_only(linearizer, sample_table):
    instance = linearizer.encode(sample_table)
    visibility = build_visibility(instance)
    kinds = instance.element_kinds()
    cols = instance.element_cols()
    nt = instance.n_tokens

    header_positions = np.where(kinds == KIND_HEADER)[0]
    col0_header = header_positions[cols[header_positions] == 0][0]
    # Header of column 0 sees a column-0 cell but not a column-2 cell.
    cell_col0 = nt + 1  # row 0, col 0
    cell_col2 = nt + 3  # row 0, col 2
    assert visibility[col0_header, cell_col0]
    assert not visibility[col0_header, cell_col2]
    # Headers all see each other.
    assert visibility[np.ix_(header_positions, header_positions)].all()


def test_visibility_from_structure_all_caption():
    kinds = np.full(4, KIND_CAPTION)
    visibility = visibility_from_structure(kinds, np.full(4, -1), np.full(4, -1))
    assert visibility.all()


def test_visibility_no_row_col_leakage_for_topic():
    """Topic entity has row=col=-1; caption tokens also use -1.  They are
    globally visible anyway, but -1 must never make two *cells* in different
    places 'same row' spuriously."""
    kinds = np.array([KIND_CELL, KIND_CELL])
    rows = np.array([0, 1])
    cols = np.array([0, 1])
    visibility = visibility_from_structure(kinds, rows, cols)
    assert not visibility[0, 1]
