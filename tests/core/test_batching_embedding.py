"""Tests for batch collation and the embedding layer."""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.batching import batches_of, collate
from repro.core.embedding import TableEmbedding
from repro.text.vocab import MASK_ID, PAD_ID


@pytest.fixture(scope="module")
def instances(request):
    context = request.getfixturevalue("context")
    return context, context.instances_for(context.splits.train)[:16]


def test_collate_shapes_consistent(instances):
    _, insts = instances
    batch = collate(insts[:5])
    b, lt = batch["token_ids"].shape
    le = batch["entity_ids"].shape[1]
    assert b == 5
    assert batch["visibility"].shape == (5, lt + le, lt + le)
    assert batch["mention_ids"].shape[:2] == (5, le)


def test_collate_padding_masks(instances):
    _, insts = instances
    batch = collate(insts[:5])
    for i, instance in enumerate(insts[:5]):
        assert batch["token_mask"][i].sum() == instance.n_tokens
        assert batch["entity_mask"][i].sum() == instance.n_entities
        # Pad token ids are PAD everywhere past the real length.
        assert (batch["token_ids"][i, instance.n_tokens:] == PAD_ID).all()


def test_collate_pad_positions_invisible_to_real(instances):
    _, insts = instances
    batch = collate(insts[:5])
    lt = batch["token_ids"].shape[1]
    for i, instance in enumerate(insts[:5]):
        nt, ne = instance.n_tokens, instance.n_entities
        real = np.concatenate([np.arange(nt), lt + np.arange(ne)])
        pad = np.setdiff1d(np.arange(batch["visibility"].shape[1]), real)
        if len(pad):
            # No real element can see a pad element.
            assert not batch["visibility"][i][np.ix_(real, pad)].any()
            # Pads see themselves (softmax stays well defined).
            assert batch["visibility"][i][pad, pad].all()


def test_collate_empty_raises():
    with pytest.raises(ValueError):
        collate([])


def test_batches_of_covers_everything(instances, rng):
    _, insts = instances
    seen = 0
    for batch in batches_of(insts, batch_size=6, rng=rng):
        seen += batch["token_ids"].shape[0]
    assert seen == len(insts)


def test_single_instance_visibility_matches_unbatched(instances):
    from repro.core.visibility import build_visibility
    _, insts = instances
    instance = insts[0]
    batch = collate([instance])
    local = build_visibility(instance)
    nt, ne = instance.n_tokens, instance.n_entities
    np.testing.assert_array_equal(batch["visibility"][0, :nt + ne, :nt + ne], local)


def test_embedding_output_shape(instances):
    context, insts = instances
    batch = collate(insts[:3])
    out = context.model.embedding(batch)
    lt = batch["token_ids"].shape[1]
    le = batch["entity_ids"].shape[1]
    assert out.shape == (3, lt + le, context.config.dim)


def test_mention_embedding_mask_replaces_mention(instances):
    context, insts = instances
    embedding = context.model.embedding
    instance = insts[0]
    batch = collate([instance])
    no_mask = np.zeros(batch["entity_ids"].shape, dtype=bool)
    full_mask = np.ones(batch["entity_ids"].shape, dtype=bool)
    plain = embedding.mention_embeddings(batch["mention_ids"], no_mask)
    masked = embedding.mention_embeddings(batch["mention_ids"], full_mask)
    # Masked mentions collapse to the single [MASK] word embedding.
    mask_vector = embedding.word.weight.data[MASK_ID]
    np.testing.assert_allclose(masked.data[0, 0], mask_vector, atol=1e-12)
    assert not np.allclose(plain.data[0, 0], masked.data[0, 0])


def test_entity_type_embedding_differentiates(instances):
    """Subject and object cells with the same entity get different inputs."""
    context, insts = instances
    embedding = context.model.embedding
    batch = collate(insts[:1])
    base = embedding.entity_embeddings(batch).data
    flipped = {k: v.copy() for k, v in batch.items()}
    flipped["entity_type"] = 2 - batch["entity_type"]  # swap topic<->object
    changed = embedding.entity_embeddings(flipped).data
    assert not np.allclose(base, changed)


def test_token_embedding_position_matters(instances):
    context, insts = instances
    embedding = context.model.embedding
    batch = collate(insts[:1])
    base = embedding.token_embeddings(batch).data
    shifted = {k: v.copy() for k, v in batch.items()}
    shifted["token_pos"] = batch["token_pos"] + 1
    assert not np.allclose(base, embedding.token_embeddings(shifted).data)
