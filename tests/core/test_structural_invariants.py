"""Structural invariants: visibility verification and masking-config sums.

These are the test-suite half of ``python -m repro.lint --invariants``:
:func:`verify_visibility` must accept every matrix the builder produces (for
real encoded tables, not just synthetic layouts), reject tampered ones, and
the masking configuration must validate its fraction algebra.
"""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.masking import MaskingPolicy
from repro.core.visibility import (
    build_visibility,
    verify_visibility,
    visibility_from_structure,
)
from repro.lint import run_invariant_checks


def test_built_visibility_verifies_for_encoded_tables(context):
    checked = 0
    for table in context.splits.train.tables[:5]:
        instance = context.linearizer.encode(table)
        failures = verify_visibility(build_visibility(instance),
                                     instance.element_kinds(),
                                     instance.element_rows(),
                                     instance.element_cols())
        assert failures == [], failures
        checked += 1
    assert checked == 5


def test_verify_visibility_rejects_tampering(context):
    instance = context.linearizer.encode(context.splits.train.tables[0])
    kinds = instance.element_kinds()
    rows = instance.element_rows()
    cols = instance.element_cols()
    visible = build_visibility(instance)

    asymmetric = visible.copy()
    asymmetric[0, -1] = not asymmetric[0, -1]
    assert any("symmetric" in f for f in
               verify_visibility(asymmetric, kinds, rows, cols))

    no_self = visible.copy()
    np.fill_diagonal(no_self, False)
    assert any("self-visibility" in f for f in
               verify_visibility(no_self, kinds, rows, cols))

    wrong_shape = visible[:-1, :-1]
    assert verify_visibility(wrong_shape, kinds, rows, cols)


def test_verify_visibility_rejects_cross_column_leak():
    kinds = np.array([2, 1, 1, 3, 3])  # topic, two headers, two cells
    rows = np.array([-1, -1, -1, 0, 0])
    cols = np.array([-1, 0, 1, 0, 1])
    visible = visibility_from_structure(kinds, rows, cols)
    leaked = visible.copy()
    leaked[1, 4] = leaked[4, 1] = True  # header 0 sees a column-1 cell
    assert any("header" in f for f in
               verify_visibility(leaked, kinds, rows, cols))


def test_default_config_validates_and_split_sums_to_one():
    config = TURLConfig()
    config.validate()
    split = config.mer_corruption_split()
    assert set(split) == {"keep", "full_mask", "mention_kept_masked",
                          "mention_kept_noised"}
    assert sum(split.values()) == pytest.approx(1.0, abs=1e-12)
    assert split["keep"] == pytest.approx(config.mer_keep_fraction)


def test_validate_rejects_mlm_fraction_overflow():
    with pytest.raises(ValueError, match="mlm_mask_fraction"):
        TURLConfig(mlm_mask_fraction=0.9, mlm_random_fraction=0.2).validate()


def test_validate_rejects_out_of_range_fractions():
    with pytest.raises(ValueError):
        TURLConfig(mer_keep_fraction=-0.1).validate()
    with pytest.raises(ValueError):
        TURLConfig(mlm_random_fraction=1.2).validate()


def test_masking_policy_rejects_invalid_config():
    bad = TURLConfig(mlm_mask_fraction=0.9, mlm_random_fraction=0.2)
    with pytest.raises(ValueError):
        MaskingPolicy(bad, vocab_size=100, entity_vocab_size=50)


def test_lint_invariant_runner_is_clean():
    assert run_invariant_checks() == []
