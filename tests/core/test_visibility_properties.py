"""Property-based tests for the visibility matrix."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linearize import KIND_CAPTION, KIND_CELL, KIND_HEADER, KIND_TOPIC
from repro.core.visibility import visibility_from_structure


@st.composite
def structures(draw):
    n = draw(st.integers(2, 30))
    kinds = draw(st.lists(st.sampled_from(
        [KIND_CAPTION, KIND_HEADER, KIND_TOPIC, KIND_CELL]),
        min_size=n, max_size=n))
    rows, cols = [], []
    for kind in kinds:
        if kind == KIND_CELL:
            rows.append(draw(st.integers(0, 5)))
            cols.append(draw(st.integers(0, 4)))
        elif kind == KIND_HEADER:
            rows.append(-1)
            cols.append(draw(st.integers(0, 4)))
        else:
            rows.append(-1)
            cols.append(-1)
    return np.array(kinds), np.array(rows), np.array(cols)


@settings(max_examples=80, deadline=None)
@given(structures())
def test_property_visibility_symmetric_with_diagonal(structure):
    kinds, rows, cols = structure
    visibility = visibility_from_structure(kinds, rows, cols)
    assert (visibility == visibility.T).all()
    assert visibility.diagonal().all()


@settings(max_examples=80, deadline=None)
@given(structures())
def test_property_globals_see_everything(structure):
    kinds, rows, cols = structure
    visibility = visibility_from_structure(kinds, rows, cols)
    global_mask = (kinds == KIND_CAPTION) | (kinds == KIND_TOPIC)
    assert visibility[global_mask].all()
    assert visibility[:, global_mask].all()


@settings(max_examples=80, deadline=None)
@given(structures())
def test_property_cell_pairs_follow_row_col_rule(structure):
    kinds, rows, cols = structure
    visibility = visibility_from_structure(kinds, rows, cols)
    cell_positions = np.where(kinds == KIND_CELL)[0]
    for i in cell_positions:
        for j in cell_positions:
            if i == j:
                continue
            expected = rows[i] == rows[j] or cols[i] == cols[j]
            assert visibility[i, j] == expected


@settings(max_examples=80, deadline=None)
@given(structures())
def test_property_header_cell_rule(structure):
    kinds, rows, cols = structure
    visibility = visibility_from_structure(kinds, rows, cols)
    headers = np.where(kinds == KIND_HEADER)[0]
    cells = np.where(kinds == KIND_CELL)[0]
    for h in headers:
        for c in cells:
            assert visibility[h, c] == (cols[h] == cols[c])
