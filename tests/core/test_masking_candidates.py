"""Tests for MLM/MER masking policies and candidate construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TURLConfig
from repro.core.batching import collate
from repro.core.candidates import CandidateBuilder
from repro.core.linearize import ETYPE_TOPIC, Linearizer
from repro.core.masking import IGNORE, MaskingPolicy
from repro.text.tokenizer import WordPieceTokenizer
from repro.text.vocab import MASK_ID, PAD_ID, UNK_ID, EntityVocabulary


@pytest.fixture(scope="module")
def pipeline(request):
    """Linearized instances from the session corpus."""
    splits = request.getfixturevalue("splits")
    tokenizer = WordPieceTokenizer.train(splits.train.metadata_texts(), vocab_size=2000)
    entity_vocab = EntityVocabulary.build_from_counts(splits.train.entity_counts())
    config = TURLConfig()
    linearizer = Linearizer(tokenizer, entity_vocab, config)
    instances = [linearizer.encode(t) for t in splits.train.tables[:40]]
    return tokenizer, entity_vocab, config, instances, splits


def test_masking_preserves_input_batch(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:8])
    original_tokens = batch["token_ids"].copy()
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    policy.apply(batch, rng)
    np.testing.assert_array_equal(batch["token_ids"], original_tokens)


def test_mlm_respects_ratio(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:32])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    eligible = batch["token_mask"] & (batch["token_ids"] != PAD_ID) & (batch["token_ids"] != UNK_ID)
    ratio = masked.n_mlm / eligible.sum()
    assert 0.1 < ratio < 0.32  # around the 20% target


def test_mlm_labels_match_original_ids(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:8])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    selected = masked.mlm_labels != IGNORE
    np.testing.assert_array_equal(masked.mlm_labels[selected],
                                  batch["token_ids"][selected])


def test_mlm_masked_tokens_are_replaced(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:32])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    selected = masked.mlm_labels != IGNORE
    changed = masked.batch["token_ids"][selected] != batch["token_ids"][selected]
    masked_to_mask = (masked.batch["token_ids"][selected] == MASK_ID).mean()
    # ~80% should be [MASK]; at least some random/unchanged.
    assert 0.6 < masked_to_mask <= 0.95
    assert changed.mean() > 0.7


def test_mer_respects_ratio_and_eligibility(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:32])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    selected = masked.mer_labels != IGNORE
    # Topic entities are never selected.
    assert not (selected & (batch["entity_type"] == ETYPE_TOPIC)).any()
    # Unlinked (PAD) and UNK cells are never selected.
    assert not (selected & (batch["entity_ids"] == PAD_ID)).any()
    assert not (selected & (batch["entity_ids"] == UNK_ID)).any()
    eligible = (batch["entity_mask"] & (batch["entity_ids"] >= 5)
                & (batch["entity_type"] != ETYPE_TOPIC))
    ratio = selected.sum() / eligible.sum()
    assert 0.45 < ratio < 0.75  # around the 60% target


def test_mer_mention_masking_fraction(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    batch = collate(instances[:40])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    selected = masked.mer_labels != IGNORE
    mention_masked = masked.batch["mention_masked"][selected].mean()
    # 63% of selected cells are fully masked.
    assert 0.45 < mention_masked < 0.8
    # Mention masking never happens outside selected cells.
    assert not masked.batch["mention_masked"][~selected].any()


def test_mer_mask_ratio_zero_masks_nothing(pipeline, rng):
    tokenizer, entity_vocab, config, instances, _ = pipeline
    config0 = TURLConfig(mer_probability=0.0)
    batch = collate(instances[:8])
    policy = MaskingPolicy(config0, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    assert masked.n_mer == 0


@settings(max_examples=10, deadline=None)
@given(ratio=st.floats(min_value=0.1, max_value=0.9))
def test_property_mer_ratio_tracks_config(pipeline, ratio):
    tokenizer, entity_vocab, _, instances, _ = pipeline
    config = TURLConfig(mer_probability=ratio)
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    rng = np.random.default_rng(7)
    batch = collate(instances[:40])
    masked = policy.apply(batch, rng)
    eligible = (batch["entity_mask"] & (batch["entity_ids"] >= 5)
                & (batch["entity_type"] != ETYPE_TOPIC)).sum()
    observed = masked.n_mer / eligible
    assert abs(observed - ratio) < 0.15


def test_candidates_include_truth_and_table_entities(pipeline, rng):
    tokenizer, entity_vocab, config, instances, splits = pipeline
    builder = CandidateBuilder(splits.train, entity_vocab, config)
    batch = collate(instances[:8])
    policy = MaskingPolicy(config, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    candidate_ids, remapped = builder.build(batch["entity_ids"], masked.mer_labels, rng)

    assert len(candidate_ids) <= config.max_candidates
    assert len(set(candidate_ids.tolist())) == len(candidate_ids)
    selected = masked.mer_labels != IGNORE
    # Every true entity is present and the remapped index points at it.
    for true_id, index in zip(masked.mer_labels[selected], remapped[selected]):
        assert candidate_ids[index] == true_id


def test_candidates_contain_cooccurring_entities(pipeline, rng):
    tokenizer, entity_vocab, config, instances, splits = pipeline
    builder = CandidateBuilder(splits.train, entity_vocab, config)
    # Co-occurrence index is populated and symmetric-ish.
    assert builder.cooccurrence
    some_entity = next(iter(builder.cooccurrence))
    assert builder.cooccurrence[some_entity]


def test_candidates_cap_respected_and_no_specials(pipeline, rng):
    tokenizer, entity_vocab, config, instances, splits = pipeline
    small = TURLConfig(max_candidates=16, n_random_negatives=100,
                       n_cooccurrence_candidates=100)
    builder = CandidateBuilder(splits.train, entity_vocab, small)
    batch = collate(instances[:8])
    policy = MaskingPolicy(small, len(tokenizer.vocab), len(entity_vocab))
    masked = policy.apply(batch, rng)
    n_true = len(set(masked.mer_labels[masked.mer_labels != IGNORE].tolist()))
    candidate_ids, _ = builder.build(batch["entity_ids"], masked.mer_labels, rng)
    assert len(candidate_ids) <= max(16, n_true)
    assert (candidate_ids >= 5).all()  # no special ids among candidates
