"""Property tests for epoch batching, bucketing, and collate edge cases.

The flat shuffle order is load-bearing: every committed training golden was
produced by it, so its byte-for-byte behaviour is pinned with a golden hash.
Bucketed shuffling only has to satisfy the coverage/shape properties — its
order is seeded-equivalent, not bit-equal.
"""

import hashlib

import numpy as np
import pytest

from repro.core.batching import (
    SHUFFLE_MODES,
    batches_of,
    bucket_key,
    bucketed_chunk_indices,
    collate,
)
from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
    ETYPE_OBJECT,
    ETYPE_TOPIC,
    TableInstance,
)
from repro.core.visibility import build_visibility
from repro.text.vocab import PAD_ID

_MENTION_WIDTH = 4
_FIRST_TOKEN_BASE = 100  # token_ids[0] tags each instance with its index


def _make_instance(index: int, n_tokens: int, n_entities: int,
                   seed: int) -> TableInstance:
    """A synthetic instance whose first token id encodes ``index``."""
    rng = np.random.default_rng(seed)
    n_caption = max(1, n_tokens // 3)
    n_header = n_tokens - n_caption
    token_ids = rng.integers(10, 90, size=n_tokens)
    token_ids[0] = _FIRST_TOKEN_BASE + index
    token_kind = np.concatenate([np.full(n_caption, KIND_CAPTION),
                                 np.full(n_header, KIND_HEADER)])
    token_col = np.concatenate([np.full(n_caption, -1),
                                rng.integers(0, 3, size=n_header)])
    token_pos = np.concatenate([np.arange(n_caption), np.arange(n_header)])

    entity_kind = np.full(n_entities, KIND_CELL)
    entity_type = np.full(n_entities, ETYPE_OBJECT)
    entity_row = rng.integers(0, 4, size=n_entities)
    entity_col = rng.integers(0, 3, size=n_entities)
    if n_entities:
        entity_kind[0] = KIND_TOPIC
        entity_type[0] = ETYPE_TOPIC
        entity_row[0] = -1
        entity_col[0] = -1
    return TableInstance(
        table_id=f"synthetic-{index}",
        token_ids=token_ids.astype(np.int64),
        token_kind=token_kind.astype(np.int64),
        token_col=token_col.astype(np.int64),
        token_pos=token_pos.astype(np.int64),
        entity_ids=rng.integers(5, 50, size=n_entities).astype(np.int64),
        entity_kind=entity_kind.astype(np.int64),
        entity_row=entity_row.astype(np.int64),
        entity_col=entity_col.astype(np.int64),
        entity_type=entity_type.astype(np.int64),
        mention_ids=rng.integers(10, 90, size=(n_entities, _MENTION_WIDTH)
                                 ).astype(np.int64),
        entity_kb_ids=[None] * n_entities,
    )


@pytest.fixture(scope="module")
def instances():
    """30 instances over 7 distinct (n_tokens, n_entities) shapes."""
    shapes = [(6, 3), (6, 3), (9, 4), (9, 4), (9, 4), (12, 2), (5, 5),
              (6, 3), (12, 2), (7, 6)] * 3
    return [_make_instance(i, nt, ne, seed=1000 + i)
            for i, (nt, ne) in enumerate(shapes)]


def _seen_indices(batches) -> list:
    seen = []
    for batch in batches:
        for row in range(batch["token_ids"].shape[0]):
            seen.append(int(batch["token_ids"][row, 0]) - _FIRST_TOKEN_BASE)
    return seen


# -- coverage: every instance exactly once per epoch --------------------------

@pytest.mark.parametrize("shuffle", SHUFFLE_MODES)
@pytest.mark.parametrize("batch_size", [1, 4, 7, 64])
@pytest.mark.parametrize("seed", [None, 0, 123])
def test_every_instance_appears_exactly_once_per_epoch(instances, shuffle,
                                                       batch_size, seed):
    rng = np.random.default_rng(seed) if seed is not None else None
    seen = _seen_indices(batches_of(instances, batch_size, rng=rng,
                                    shuffle=shuffle))
    assert sorted(seen) == list(range(len(instances)))


def test_bucketed_chunk_indices_partition_the_order():
    rng = np.random.default_rng(8)
    keys = [("a", "b", "c")[i % 3] for i in range(23)]
    order = rng.permutation(23)
    chunks = bucketed_chunk_indices(keys, 4, order, rng)
    flat = [i for chunk in chunks for i in chunk]
    assert sorted(flat) == list(range(23))
    for chunk in chunks:
        assert 1 <= len(chunk) <= 4
        assert len({keys[i] for i in chunk}) == 1


def test_bucketed_chunks_respect_permutation_order_within_buckets():
    keys = ["x"] * 9
    order = np.asarray([4, 7, 1, 0, 8, 2, 6, 3, 5])
    chunks = bucketed_chunk_indices(keys, 3, order)  # no rng: stable order
    assert chunks == [[4, 7, 1], [0, 8, 2], [6, 3, 5]]


# -- bucket shape guarantees --------------------------------------------------

@pytest.mark.parametrize("batch_size", [1, 3, 8])
def test_bucket_batches_are_bounded_and_padding_free(instances, batch_size):
    for batch in batches_of(instances, batch_size,
                            rng=np.random.default_rng(7), shuffle="bucket"):
        assert batch["token_ids"].shape[0] <= batch_size
        # Same bucket => identical shapes => every mask entry is real.
        assert batch["token_mask"].all()
        assert batch["entity_mask"].all()


def test_bucket_key_is_the_padding_equivalence_class(instances):
    instance = instances[0]
    assert bucket_key(instance) == (instance.n_tokens, instance.n_entities)


def test_unknown_shuffle_mode_raises(instances):
    with pytest.raises(ValueError, match="unknown shuffle mode"):
        list(batches_of(instances, 4, shuffle="spiral"))


# -- flat order golden hash ---------------------------------------------------

_BATCH_KEYS = ("token_ids", "token_kind", "token_col", "token_pos",
               "token_mask", "entity_ids", "entity_type", "entity_row",
               "entity_col", "entity_mask", "mention_ids", "visibility")

FLAT_EPOCH_SHA256 = \
    "dac3f96aeb27f84077c80d35083634f7e274b10ab22cbda9c97a2b70c29df349"


def _epoch_digest(instances, batch_size, seed) -> str:
    digest = hashlib.sha256()
    rng = np.random.default_rng(seed) if seed is not None else None
    for batch in batches_of(instances, batch_size, rng=rng, shuffle="flat"):
        for key in _BATCH_KEYS:
            digest.update(np.ascontiguousarray(batch[key]).tobytes())
    return digest.hexdigest()


def test_flat_shuffle_epoch_is_bit_identical_to_golden(instances):
    """The historical epoch order, byte for byte.

    This hash covers every array of every batch of a seeded flat epoch; it
    changing means the default training order changed, which would break the
    committed pre-training and fine-tuning goldens.
    """
    assert _epoch_digest(instances, batch_size=4, seed=123) == \
        FLAT_EPOCH_SHA256


# -- collate edge cases -------------------------------------------------------

def test_collate_single_instance_batch_has_no_padding(instances):
    instance = instances[2]
    batch = collate([instance])
    assert batch["token_ids"].shape == (1, instance.n_tokens)
    assert batch["entity_ids"].shape == (1, instance.n_entities)
    assert batch["token_mask"].all() and batch["entity_mask"].all()
    local = build_visibility(instance)
    assert np.array_equal(batch["visibility"][0], local)


def test_collate_zero_entity_instance_alone():
    empty = _make_instance(0, n_tokens=6, n_entities=0, seed=77)
    batch = collate([empty])
    assert batch["entity_ids"].shape == (1, 0)
    assert batch["mention_ids"].shape == (1, 0, 0)
    assert batch["visibility"].shape == (1, 6, 6)
    assert batch["token_mask"].all()


def test_collate_zero_entity_instance_mixed_with_real_ones():
    empty = _make_instance(0, n_tokens=6, n_entities=0, seed=77)
    full = _make_instance(1, n_tokens=6, n_entities=3, seed=78)
    batch = collate([full, empty])
    assert batch["entity_ids"].shape == (2, 3)
    assert not batch["entity_mask"][1].any()
    assert (batch["entity_ids"][1] == PAD_ID).all()
    # The empty instance's pad entity slots stay invisible to its tokens.
    assert not batch["visibility"][1, :6, 6:].any()
    # ... but see themselves, keeping the softmax well defined.
    assert batch["visibility"][1, 6:, 6:].diagonal().all()


def test_collate_max_length_ties_pad_nothing():
    tied = [_make_instance(i, n_tokens=8, n_entities=4, seed=200 + i)
            for i in range(3)]
    batch = collate(tied)
    assert batch["token_ids"].shape == (3, 8)
    assert batch["entity_ids"].shape == (3, 4)
    assert batch["token_mask"].all() and batch["entity_mask"].all()
    assert (batch["token_ids"] != PAD_ID)[:, 0].all()


def test_collate_mixed_lengths_pad_to_the_max(instances):
    mixed = [instances[0], instances[6], instances[5]]  # (6,3) (5,5) (12,2)
    batch = collate(mixed)
    assert batch["token_ids"].shape == (3, 12)
    assert batch["entity_ids"].shape == (3, 5)
    for row, instance in enumerate(mixed):
        assert batch["token_mask"][row].sum() == instance.n_tokens
        assert batch["entity_mask"][row].sum() == instance.n_entities
