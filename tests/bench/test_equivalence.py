"""Bit-identity proofs for every optimized hot path.

Each optimized kernel ships with its pre-optimization implementation
(``_reference_*``); these tests drive both from identical seeds across
hundreds of randomized cases and demand *exact* equality — not allclose —
because the training goldens pin exact floats and any drift would surface
there as a hard failure.
"""

import numpy as np
import pytest

from repro.config import TURLConfig
from repro.core.candidates import _FIRST_REAL_ID, CandidateBuilder
from repro.core.linearize import (
    KIND_CAPTION,
    KIND_CELL,
    KIND_HEADER,
    KIND_TOPIC,
)
from repro.core.masking import IGNORE
from repro.core.visibility import (
    _reference_visibility_from_structure,
    cached_visibility,
    clear_visibility_cache,
    visibility_cache_stats,
    visibility_from_structure,
)
from repro.nn import Tensor
from repro.nn.attention import AdditiveVisibilityMask, MultiHeadAttention
from repro.text.vocab import EntityVocabulary

N_CASES = 200


# -- visibility construction --------------------------------------------------

def _random_structure(rng: np.random.Generator, realistic: bool):
    """One random ``(kinds, rows, cols)`` triple.

    ``realistic=True`` lays elements out like the linearizer (caption,
    headers, topic, row-major cells); ``realistic=False`` draws every field
    independently to stress rule combinations the linearizer never emits.
    """
    if realistic:
        n_caption = int(rng.integers(0, 8))
        n_cols = int(rng.integers(1, 5))
        n_header = n_cols * int(rng.integers(0, 3))
        n_cells = int(rng.integers(1, 40))
        kinds = np.concatenate([
            np.full(n_caption, KIND_CAPTION),
            np.full(n_header, KIND_HEADER),
            [KIND_TOPIC],
            np.full(n_cells, KIND_CELL),
        ]).astype(np.int64)
        rows = np.concatenate([
            np.full(n_caption + n_header + 1, -1),
            rng.integers(0, max(1, n_cells // n_cols), size=n_cells),
        ]).astype(np.int64)
        cols = np.concatenate([
            np.full(n_caption, -1),
            rng.integers(0, n_cols, size=n_header),
            [-1],
            rng.integers(0, n_cols, size=n_cells),
        ]).astype(np.int64)
        return kinds, rows, cols
    n = int(rng.integers(0, 40))
    kinds = rng.integers(0, 4, size=n).astype(np.int64)
    rows = rng.integers(-1, 6, size=n).astype(np.int64)
    cols = rng.integers(-1, 6, size=n).astype(np.int64)
    return kinds, rows, cols


def test_visibility_matches_reference_on_200_random_structures():
    rng = np.random.default_rng(1000)
    for case in range(N_CASES):
        kinds, rows, cols = _random_structure(rng, realistic=case % 2 == 0)
        fast = visibility_from_structure(kinds, rows, cols)
        slow = _reference_visibility_from_structure(kinds, rows, cols)
        assert np.array_equal(fast, slow), f"case {case} diverged"


@pytest.mark.parametrize("kinds,rows,cols", [
    ([], [], []),                                      # empty table
    ([KIND_CAPTION], [-1], [-1]),                      # lone caption token
    ([KIND_TOPIC], [-1], [-1]),                        # lone topic entity
    ([KIND_CELL, KIND_CELL], [0, 0], [0, 1]),          # same-row pair
    ([KIND_CELL, KIND_CELL], [0, 1], [0, 1]),          # unrelated pair
    ([KIND_HEADER, KIND_CELL], [-1, 3], [2, 2]),       # header over its cell
])
def test_visibility_matches_reference_on_edge_structures(kinds, rows, cols):
    kinds = np.asarray(kinds, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    fast = visibility_from_structure(kinds, rows, cols)
    slow = _reference_visibility_from_structure(kinds, rows, cols)
    assert np.array_equal(fast, slow)


def test_cached_visibility_is_equal_readonly_and_counts_hits():
    clear_visibility_cache()
    rng = np.random.default_rng(7)
    kinds, rows, cols = _random_structure(rng, realistic=True)
    first = cached_visibility(kinds, rows, cols)
    assert np.array_equal(first, visibility_from_structure(kinds, rows, cols))
    assert not first.flags.writeable
    second = cached_visibility(kinds.copy(), rows.copy(), cols.copy())
    assert second is first
    stats = visibility_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    clear_visibility_cache()
    assert visibility_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}


# -- MER candidate assembly ---------------------------------------------------

@pytest.fixture(scope="module")
def builder(corpus):
    entity_vocab = EntityVocabulary.build_from_counts(corpus.entity_counts(),
                                                      min_frequency=2)
    return CandidateBuilder(corpus, entity_vocab, TURLConfig())


def _random_candidate_inputs(rng: np.random.Generator, vocab_size: int):
    batch = int(rng.integers(1, 6))
    length = int(rng.integers(1, 40))
    # Mix PAD/special ids (< _FIRST_REAL_ID) in with real ids, duplicated.
    entity_ids = rng.integers(0, vocab_size, size=(batch, length))
    labels = np.full((batch, length), IGNORE, dtype=np.int64)
    n_masked = int(rng.integers(0, length + 1))
    for row in range(batch):
        positions = rng.choice(length, size=n_masked, replace=False)
        labels[row, positions] = rng.integers(_FIRST_REAL_ID, vocab_size,
                                              size=n_masked)
    return entity_ids, labels


def test_candidate_build_matches_reference_on_200_seeded_cases(builder):
    vocab_size = len(builder.entity_vocab)
    meta_rng = np.random.default_rng(2000)
    trims = 0
    for case in range(N_CASES):
        entity_ids, labels = _random_candidate_inputs(meta_rng, vocab_size)
        seed = int(meta_rng.integers(2**31))
        fast_ids, fast_labels = builder.build(
            entity_ids, labels, np.random.default_rng(seed))
        slow_ids, slow_labels = builder._reference_build(
            entity_ids, labels, np.random.default_rng(seed))
        assert np.array_equal(fast_ids, slow_ids), f"case {case} (seed {seed})"
        assert np.array_equal(fast_labels, slow_labels), \
            f"case {case} (seed {seed})"
        if len(fast_ids) == builder.config.max_candidates:
            trims += 1
    # The over-budget trim is its own rng-consuming branch; make sure the
    # sweep actually exercised it.
    assert trims > 0


def test_candidate_build_matches_reference_with_no_masked_labels(builder):
    vocab_size = len(builder.entity_vocab)
    entity_ids = np.arange(_FIRST_REAL_ID,
                           min(vocab_size, _FIRST_REAL_ID + 12)).reshape(1, -1)
    labels = np.full(entity_ids.shape, IGNORE, dtype=np.int64)
    fast = builder.build(entity_ids, labels, np.random.default_rng(5))
    slow = builder._reference_build(entity_ids, labels,
                                    np.random.default_rng(5))
    assert np.array_equal(fast[0], slow[0])
    assert np.array_equal(fast[1], slow[1])
    assert np.all(fast[1] == IGNORE)


def test_candidate_build_matches_reference_with_all_pad_entities(builder):
    entity_ids = np.zeros((2, 7), dtype=np.int64)  # every id is special/PAD
    labels = np.full((2, 7), IGNORE, dtype=np.int64)
    labels[0, 3] = _FIRST_REAL_ID
    fast = builder.build(entity_ids, labels, np.random.default_rng(11))
    slow = builder._reference_build(entity_ids, labels,
                                    np.random.default_rng(11))
    assert np.array_equal(fast[0], slow[0])
    assert np.array_equal(fast[1], slow[1])


# -- additive attention mask --------------------------------------------------

def _random_mask_case(rng: np.random.Generator):
    heads = int(rng.choice([1, 2, 4]))
    dim = heads * int(rng.integers(2, 6))
    batch = int(rng.integers(1, 4))
    length = int(rng.integers(2, 12))
    x = rng.standard_normal((batch, length, dim))
    if rng.random() < 0.2:
        visibility = rng.random((length, length)) > 0.4        # 2-D mask
        visibility |= np.eye(length, dtype=bool)
    else:
        visibility = rng.random((batch, length, length)) > 0.4
        visibility |= np.eye(length, dtype=bool)[None]
    return dim, heads, x, visibility


def _forward_backward(attention, x: np.ndarray, visibility, weights,
                      reference: bool):
    attention.zero_grad()
    hidden = Tensor(x.copy(), requires_grad=True)
    if reference:
        out = attention._reference_forward(hidden, visibility)
    else:
        out = attention.forward(hidden, AdditiveVisibilityMask(visibility))
    loss = (out * Tensor(weights)).sum()
    loss.backward()
    grads = [np.array(p.grad, copy=True) for p in attention.parameters()]
    return out.data.copy(), np.array(hidden.grad, copy=True), grads


def test_additive_mask_forward_and_gradients_match_on_200_seeded_cases():
    meta_rng = np.random.default_rng(3000)
    for case in range(N_CASES):
        dim, heads, x, visibility = _random_mask_case(meta_rng)
        seed = int(meta_rng.integers(2**31))
        attention = MultiHeadAttention(dim, heads,
                                       np.random.default_rng(seed))
        attention.eval()
        weights = meta_rng.standard_normal(x.shape[:2] + (dim,))
        fast = _forward_backward(attention, x, visibility, weights,
                                 reference=False)
        slow = _forward_backward(attention, x, visibility, weights,
                                 reference=True)
        assert np.array_equal(fast[0], slow[0]), f"case {case}: outputs"
        assert np.array_equal(fast[1], slow[1]), f"case {case}: input grad"
        for index, (g_fast, g_slow) in enumerate(zip(fast[2], slow[2])):
            assert np.array_equal(g_fast, g_slow), \
                f"case {case}: parameter grad {index}"


def test_additive_mask_zeroes_probability_at_invisible_entries():
    rng = np.random.default_rng(42)
    attention = MultiHeadAttention(8, 2, rng)
    attention.eval()
    x = Tensor(rng.standard_normal((1, 5, 8)))
    visibility = np.eye(5, dtype=bool)[None].repeat(1, axis=0)
    mask = AdditiveVisibilityMask(visibility)
    additive = mask.additive().data
    assert additive.shape == (1, 1, 5, 5)
    # exp(logit + MASKED_LOGIT) underflows to exactly 0.0 post max-shift,
    # which is what makes the additive path bit-identical to masked_fill.
    out_masked = attention(x, visibility=mask).data
    out_reference = attention._reference_forward(x, visibility).data
    assert np.array_equal(out_masked, out_reference)


def test_additive_mask_is_built_once_and_validates_shape():
    visibility = np.eye(4, dtype=bool)[None]
    mask = AdditiveVisibilityMask(visibility)
    assert mask.additive() is mask.additive()
    mask.check_shape(1, 4)
    with pytest.raises(ValueError):
        mask.check_shape(2, 4)
    with pytest.raises(ValueError):
        AdditiveVisibilityMask(np.ones(3, dtype=bool))


def test_forward_without_mask_matches_reference():
    rng = np.random.default_rng(9)
    attention = MultiHeadAttention(8, 2, rng)
    attention.eval()
    x = rng.standard_normal((2, 6, 8))
    fast = attention.forward(Tensor(x)).data
    slow = attention._reference_forward(Tensor(x)).data
    assert np.array_equal(fast, slow)
