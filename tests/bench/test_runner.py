"""Tests for the repro.bench harness: protocol, reporting, reference mode."""

import json

import numpy as np
import pytest

from repro.bench import (
    BenchCase,
    default_cases,
    format_report,
    reference_mode,
    report_to_dict,
    write_report,
)
from repro.bench.runner import CaseResult, run_case, run_cases
from repro.core.candidates import CandidateBuilder
from repro.nn.attention import MultiHeadAttention


def _counting_case(name="counter", reference=True):
    calls = {"setup": 0, "run": 0, "reference": 0}

    def setup():
        calls["setup"] += 1
        return list(range(10))

    def run(state):
        calls["run"] += 1
        return float(len(state))

    def ref(state):
        calls["reference"] += 1
        return float(len(state))

    case = BenchCase(name=name, setup=setup, run=run,
                     reference=ref if reference else None, unit="widgets",
                     description="test case")
    return case, calls


def test_run_case_follows_warmup_repeat_protocol():
    case, calls = _counting_case()
    result = run_case(case, warmup=2, repeat=3)
    assert calls["setup"] == 1
    # 2 warmup + 3 timed + 1 tracemalloc pass, for each side.
    assert calls["run"] == 6
    assert calls["reference"] == 6
    assert len(result.seconds) == 3
    assert len(result.reference_seconds) == 3
    assert result.items == 10.0
    assert result.peak_bytes >= 0
    assert result.best_seconds == min(result.seconds)
    assert result.throughput > 0
    assert result.speedup is not None


def test_run_case_without_reference_has_no_speedup():
    case, _ = _counting_case(reference=False)
    result = run_case(case, warmup=0, repeat=1)
    assert result.reference_seconds is None
    assert result.speedup is None
    assert "reference" not in result.to_dict()


def test_run_case_rejects_item_count_mismatch():
    case = BenchCase(name="bad", setup=lambda: None,
                     run=lambda state: 5.0, reference=lambda state: 6.0)
    with pytest.raises(RuntimeError, match="meaningless"):
        run_case(case, warmup=0, repeat=1)


def test_run_case_validates_protocol_arguments():
    case, _ = _counting_case()
    with pytest.raises(ValueError):
        run_case(case, repeat=0)
    with pytest.raises(ValueError):
        run_case(case, warmup=-1)


def test_run_cases_reports_progress_in_order():
    seen = []
    cases = [_counting_case(name)[0] for name in ("a", "b")]
    results = run_cases(cases, warmup=0, repeat=1, progress=seen.append)
    assert [r.name for r in results] == ["a", "b"]
    assert seen == ["running a ...", "running b ..."]


def test_report_round_trips_through_json(tmp_path):
    case, _ = _counting_case()
    results = run_cases([case], warmup=1, repeat=2)
    path = tmp_path / "BENCH_test.json"
    payload = write_report(str(path), "test", results, warmup=1, repeat=2)
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(payload))
    assert on_disk["bench"] == "test"
    assert on_disk["protocol"] == {"warmup": 1, "repeat": 2,
                                   "timer": "repro.obs.clock.perf_counter"}
    (entry,) = on_disk["cases"]
    assert entry["name"] == "counter"
    assert len(entry["seconds"]) == 2
    assert entry["speedup"] == pytest.approx(
        entry["reference"]["best_seconds"] / entry["best_seconds"])


def test_format_report_renders_one_line_per_case():
    results = [
        CaseResult(name="fast_thing", unit="items", description="",
                   warmup=1, repeat=2, items=100.0, seconds=[0.5, 0.4],
                   peak_bytes=2048, reference_seconds=[1.0, 0.8],
                   reference_peak_bytes=4096),
        CaseResult(name="lonely", unit="items", description="",
                   warmup=1, repeat=1, items=1.0, seconds=[0.1],
                   peak_bytes=10),
    ]
    text = format_report(results)
    lines = text.splitlines()
    assert len(lines) == 4  # header + rule + 2 cases
    assert "fast_thing" in lines[2] and "2.00x" in lines[2]
    assert "lonely" in lines[3] and lines[3].rstrip().endswith("-")


def test_default_cases_cover_every_optimized_kernel():
    names = [case.name for case in default_cases()]
    assert names == ["visibility_construct", "visibility_cache",
                     "candidate_build", "attention_mask",
                     "bucketed_batching", "corpus_stream", "pretrain_steps",
                     "serve_throughput", "serve_fleet"]
    for case in default_cases():
        assert case.reference is not None, case.name


def test_reference_mode_swaps_and_restores_kernels():
    import repro.core.batching as batching
    import repro.core.visibility as visibility

    original_build = visibility.build_visibility
    original_forward = MultiHeadAttention.forward
    original_candidates = CandidateBuilder.build
    with reference_mode():
        assert visibility.build_visibility is not original_build
        assert batching.build_visibility is visibility.build_visibility
        assert MultiHeadAttention.forward is \
            MultiHeadAttention._reference_forward
        assert CandidateBuilder.build is CandidateBuilder._reference_build
    assert visibility.build_visibility is original_build
    assert batching.build_visibility is original_build
    assert MultiHeadAttention.forward is original_forward
    assert CandidateBuilder.build is original_candidates


def test_reference_mode_restores_on_error():
    import repro.core.visibility as visibility

    original = visibility.build_visibility
    with pytest.raises(RuntimeError):
        with reference_mode():
            raise RuntimeError("boom")
    assert visibility.build_visibility is original


def test_reference_mode_build_visibility_matches_optimized(corpus):
    from repro.core.linearize import Linearizer
    from repro.core.visibility import build_visibility
    from repro.text.tokenizer import WordPieceTokenizer
    from repro.text.vocab import EntityVocabulary

    tokenizer = WordPieceTokenizer.train(corpus.metadata_texts(),
                                         vocab_size=500)
    entity_vocab = EntityVocabulary.build_from_counts(corpus.entity_counts(),
                                                      min_frequency=2)
    linearizer = Linearizer(tokenizer, entity_vocab)
    instance = linearizer.encode(next(iter(corpus)))
    optimized = np.array(build_visibility(instance), copy=True)
    with reference_mode():
        import repro.core.visibility as visibility
        referenced = visibility.build_visibility(instance)
    assert np.array_equal(optimized, referenced)
