"""The bench regression gate: pairing, tolerances, metric fallback."""

import json

import pytest

from repro.bench import (
    CaseComparison,
    ComparisonReport,
    compare_report_files,
    compare_reports,
    format_comparison,
)


def _report(name, cases):
    return {"bench": name, "cases": cases}


def _case(name, speedup=None, throughput=None):
    case = {"name": name}
    if speedup is not None:
        case["speedup"] = speedup
    if throughput is not None:
        case["throughput"] = throughput
    return case


def test_identical_reports_pass():
    report = _report("pr6", [_case("visibility", speedup=12.0),
                             _case("collate", throughput=5000.0)])
    comparison = compare_reports(report, report)
    assert comparison.ok
    assert [c.name for c in comparison.cases] == ["collate", "visibility"]
    assert all(c.ratio == pytest.approx(1.0) for c in comparison.cases)
    assert comparison.missing == [] and comparison.added == []


def test_regression_beyond_tolerance_fails():
    baseline = _report("pr5", [_case("visibility", speedup=10.0)])
    current = _report("pr6", [_case("visibility", speedup=9.0)])
    comparison = compare_reports(current, baseline)  # 10% drop > 5% tol
    assert not comparison.ok
    (case,) = comparison.regressions
    assert case.name == "visibility"
    assert case.metric == "speedup"
    assert case.change == pytest.approx(-0.10)


def test_drop_within_tolerance_passes():
    baseline = _report("pr5", [_case("visibility", speedup=10.0)])
    current = _report("pr6", [_case("visibility", speedup=9.6)])
    assert compare_reports(current, baseline).ok  # 4% drop < 5% tol


def test_per_case_tolerance_override():
    baseline = _report("pr5", [_case("pretrain_steps", speedup=10.0),
                               _case("collate", speedup=10.0)])
    current = _report("pr6", [_case("pretrain_steps", speedup=9.7),
                              _case("collate", speedup=9.7)])
    comparison = compare_reports(current, baseline,
                                 per_case={"pretrain_steps": 0.02})
    # 3% drop: fails the 2% per-case override, passes the 5% default
    assert [c.name for c in comparison.regressions] == ["pretrain_steps"]


def test_improvement_never_regresses():
    baseline = _report("pr5", [_case("mask", speedup=5.0)])
    current = _report("pr6", [_case("mask", speedup=50.0)])
    comparison = compare_reports(current, baseline)
    assert comparison.ok
    assert comparison.cases[0].change == pytest.approx(9.0)


def test_throughput_fallback_when_no_speedup():
    baseline = _report("pr5", [_case("serve", throughput=100.0)])
    current = _report("pr6", [_case("serve", throughput=50.0)])
    comparison = compare_reports(current, baseline)
    assert comparison.cases[0].metric == "throughput"
    assert not comparison.ok


def test_metric_mismatch_falls_back_to_shared_throughput():
    baseline = _report("pr5", [_case("x", speedup=10.0, throughput=100.0)])
    current = _report("pr6", [_case("x", throughput=100.0)])
    comparison = compare_reports(current, baseline)
    (case,) = comparison.cases
    assert case.metric == "throughput"
    assert case.ratio == pytest.approx(1.0)


def test_metric_mismatch_without_shared_throughput_skips():
    baseline = _report("pr5", [_case("x", speedup=10.0)])
    current = _report("pr6", [_case("x", throughput=100.0)])
    assert compare_reports(current, baseline).cases == []


def test_missing_and_added_cases_are_reported_not_failed():
    baseline = _report("pr5", [_case("old", speedup=2.0),
                               _case("shared", speedup=2.0)])
    current = _report("pr6", [_case("shared", speedup=2.0),
                              _case("new", speedup=3.0)])
    comparison = compare_reports(current, baseline)
    assert comparison.ok
    assert comparison.missing == ["old"]
    assert comparison.added == ["new"]


def test_zero_baseline_counts_as_regression():
    case = CaseComparison("x", "speedup", baseline=0.0, current=1.0,
                          tolerance=0.05)
    assert case.ratio == 0.0 and case.regressed


def test_report_files_roundtrip(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(
        _report("pr5", [_case("visibility", speedup=10.0)])))
    current_path.write_text(json.dumps(
        _report("pr6", [_case("visibility", speedup=11.0)])))
    comparison = compare_report_files(str(current_path), str(baseline_path))
    assert comparison.ok
    assert comparison.baseline_name == "pr5"
    assert comparison.current_name == "pr6"


def test_to_dict_and_format():
    baseline = _report("pr5", [_case("a", speedup=10.0),
                               _case("gone", speedup=1.0)])
    current = _report("pr6", [_case("a", speedup=8.0),
                              _case("fresh", speedup=1.0)])
    comparison = compare_reports(current, baseline)
    payload = comparison.to_dict()
    assert payload["ok"] is False
    assert payload["cases"][0]["regressed"] is True
    assert payload["missing"] == ["gone"] and payload["added"] == ["fresh"]
    text = format_comparison(comparison)
    assert "REGRESS" in text
    assert "skip" in text and "new" in text
    assert text.splitlines()[-1].startswith("FAIL: 1 regression(s)")
    passing = format_comparison(
        compare_reports(_report("a", []), _report("b", [])))
    assert passing.splitlines()[-1].startswith("PASS: 0 regression(s)")
    empty = ComparisonReport("b", "a")
    assert empty.ok and empty.regressions == []
