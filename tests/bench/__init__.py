"""Benchmark-harness and equivalence tests."""
