"""The unified ``repro.data.Dataset`` protocol and its deprecation shims."""

import warnings

import pytest

from repro.data.dataset import (
    SPLIT_NAMES,
    Dataset,
    DatasetMetadata,
    InstanceSet,
    coerce_training_instances,
    strategy_counter,
)
from repro.data.preprocessing import filter_relational, partition_corpus
from repro.data.synthesis import SynthesisConfig, build_corpus
from repro.tasks.column_type import build_column_type_dataset
from repro.tasks.entity_linking import TURLEntityLinker
from repro.tasks.relation_extraction import build_relation_dataset


def test_instance_set_is_a_dataset():
    dataset = InstanceSet(train=[1, 2, 3], validation=[4], test=[5])
    assert isinstance(dataset, Dataset)
    assert len(dataset) == 5
    assert list(dataset) == [1, 2, 3, 4, 5]
    assert dataset.instances("validation") == [4]
    assert dataset.metadata.split_sizes == {
        "train": 3, "validation": 1, "test": 1}
    with pytest.raises(KeyError):
        dataset.instances("dev")


def test_table_corpus_and_splits_are_datasets(corpus, splits):
    for dataset in (corpus, splits):
        assert isinstance(dataset, Dataset)
        meta = dataset.metadata
        assert isinstance(meta, DatasetMetadata)
        assert meta.n_records == len(dataset)
        assert set(meta.split_sizes) <= set(SPLIT_NAMES)
    assert len(list(splits)) == len(splits)
    assert len(splits.instances("train")) == len(splits.train)


def test_task_datasets_are_datasets(context):
    column = build_column_type_dataset(
        context.kb, context.splits.train, context.splits.validation,
        context.splits.test, min_type_instances=5)
    relation = build_relation_dataset(
        context.kb, context.splits.train, context.splits.validation,
        context.splits.test)
    for dataset, key in ((column, "n_types"), (relation, "n_relations")):
        assert isinstance(dataset, Dataset)
        assert len(dataset) == sum(dataset.metadata.split_sizes.values())
        assert len(list(dataset)) == len(dataset)
        assert dataset.metadata.extra[key] > 0
        with pytest.raises(KeyError):
            dataset.instances("dev")


def test_strategy_counter_tags_and_untagged(corpus):
    counts = strategy_counter(corpus.tables)
    assert sum(counts.values()) == len(corpus.tables)
    assert all(count > 0 for count in counts.values())


def test_coerce_accepts_dataset_without_warning():
    dataset = InstanceSet(train=["a", "b"], validation=["c"])
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        instances, source = coerce_training_instances(dataset, owner="test")
    assert instances == ["a", "b"]
    assert source is dataset


def test_coerce_warns_on_bare_list():
    with pytest.warns(DeprecationWarning, match="two PRs after PR 10"):
        instances, source = coerce_training_instances([1, 2], owner="test")
    assert instances == [1, 2]
    assert source is None


def test_coerce_consumes_other_iterables_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        instances, source = coerce_training_instances(
            iter([3, 4]), owner="test")
    assert instances == [3, 4]
    assert source is None


def test_finetune_list_shim_warns_and_matches_dataset_path(context):
    """`finetune(list)` and `finetune(InstanceSet(train=list))` are twins."""
    from repro.kb.lookup import LookupService
    from repro.kb.schema import all_types
    from repro.tasks.entity_linking import build_linking_dataset

    lookup = LookupService(context.kb)
    train = build_linking_dataset(context.splits.train, lookup,
                                  require_truth=True, max_instances=6, seed=1)

    def fresh():
        return TURLEntityLinker(context.clone_model(), context.linearizer,
                                context.kb, all_types())

    with pytest.warns(DeprecationWarning, match="bare list"):
        legacy = fresh().finetune(list(train), epochs=1, seed=0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        modern = fresh().finetune(InstanceSet(train=list(train)),
                                  epochs=1, seed=0)
    assert legacy == modern
