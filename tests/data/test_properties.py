"""Property-based tests for the table data model and corpus round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Column, EntityCell, Table

_mention = st.text(alphabet="abcdefgh XYZ0123", min_size=1, max_size=12)
_maybe_entity = st.one_of(st.none(), st.from_regex(r"ent_[0-9]{1,3}", fullmatch=True))


@st.composite
def tables(draw):
    n_rows = draw(st.integers(1, 6))
    n_entity_cols = draw(st.integers(1, 3))
    n_text_cols = draw(st.integers(0, 2))
    columns = []
    for c in range(n_entity_cols):
        cells = [EntityCell(draw(_maybe_entity), draw(_mention))
                 for _ in range(n_rows)]
        columns.append(Column(f"Header {c}", "entity", cells))
    for c in range(n_text_cols):
        columns.append(Column(f"Text {c}", "text",
                              [draw(_mention) for _ in range(n_rows)]))
    return Table(
        table_id=draw(st.from_regex(r"tbl_[0-9]{1,5}", fullmatch=True)),
        page_title=draw(_mention),
        section_title=draw(_mention),
        caption=draw(_mention),
        topic_entity=draw(_maybe_entity),
        subject_column=0,
        columns=columns,
    )


@settings(max_examples=60, deadline=None)
@given(tables())
def test_property_table_json_roundtrip(table):
    restored = Table.from_json(table.to_json())
    assert restored.to_dict() == table.to_dict()


@settings(max_examples=60, deadline=None)
@given(tables())
def test_property_entity_cell_counts_consistent(table):
    cells = list(table.all_entity_cells())
    assert len(cells) == table.n_rows * len(table.entity_columns())
    linked = table.linked_entities()
    assert len(linked) == sum(1 for _, _, c in cells if c.is_linked)


@settings(max_examples=60, deadline=None)
@given(tables())
def test_property_caption_text_contains_parts(table):
    text = table.caption_text()
    for part in (table.page_title, table.section_title, table.caption):
        if part:
            assert part in text


@settings(max_examples=30, deadline=None)
@given(st.lists(tables(), min_size=0, max_size=5, unique_by=lambda t: t.table_id))
def test_property_corpus_jsonl_roundtrip(tmp_path_factory, table_list):
    from repro.data.corpus import TableCorpus

    corpus = TableCorpus(table_list)
    path = str(tmp_path_factory.mktemp("corpus") / "tables.jsonl")
    corpus.save_jsonl(path)
    restored = TableCorpus.load_jsonl(path)
    assert len(restored) == len(corpus)
    for a, b in zip(corpus, restored):
        assert a.to_dict() == b.to_dict()
