"""Tests for the table data model, synthesis, preprocessing and statistics."""

import numpy as np
import pytest

from repro.data import (
    Column,
    EntityCell,
    SynthesisConfig,
    Table,
    TableCorpus,
    build_corpus,
    corpus_statistics,
    filter_relational,
    is_relational,
    partition_corpus,
)
from repro.data.preprocessing import detect_subject_column, is_high_quality
from repro.data.statistics import format_statistics, splits_statistics
from repro.data.synthesis import TableSynthesizer


def simple_table(table_id="t1", linked=True):
    eid = "e" if linked else None
    return Table(
        table_id=table_id,
        page_title="Page",
        section_title="Section",
        caption="a caption",
        topic_entity="topic",
        subject_column=0,
        columns=[
            Column("Name", "entity", [EntityCell(f"{eid}{i}" if linked else None, f"m{i}")
                                      for i in range(4)]),
            Column("City", "entity", [EntityCell(f"c{i}", f"city{i}") for i in range(4)]),
            Column("Year", "text", ["2001", "2002", "2003", "2004"]),
        ],
    )


def test_table_shape_accessors():
    table = simple_table()
    assert table.n_rows == 4
    assert table.n_columns == 3
    assert table.headers == ["Name", "City", "Year"]
    assert table.entity_columns() == [0, 1]
    assert table.caption_text() == "Page Section a caption"


def test_table_rejects_ragged():
    with pytest.raises(ValueError):
        Table("x", "", "", "", None, [
            Column("A", "entity", [EntityCell("e", "m")]),
            Column("B", "entity", []),
        ])


def test_column_rejects_bad_kind():
    with pytest.raises(ValueError):
        Column("A", "blob", [])


def test_table_entity_access():
    table = simple_table()
    cells = list(table.all_entity_cells())
    assert len(cells) == 8  # 4 rows x 2 entity columns
    assert cells[0][:2] == (0, 0)
    assert table.subject_entities() == ["e0", "e1", "e2", "e3"]
    assert len(table.linked_entities()) == 8


def test_table_json_roundtrip():
    table = simple_table()
    restored = Table.from_json(table.to_json())
    assert restored.to_dict() == table.to_dict()
    assert restored.columns[0].cells[0].entity_id == "e0"
    assert restored.columns[2].cells[0] == "2001"


def test_corpus_add_and_lookup():
    corpus = TableCorpus([simple_table("a")])
    corpus.add(simple_table("b"))
    assert len(corpus) == 2
    assert corpus.get("b").table_id == "b"
    with pytest.raises(ValueError):
        corpus.add(simple_table("a"))


def test_corpus_jsonl_roundtrip(tmp_path):
    corpus = TableCorpus([simple_table("a"), simple_table("b")])
    path = str(tmp_path / "tables.jsonl")
    corpus.save_jsonl(path)
    loaded = TableCorpus.load_jsonl(path)
    assert len(loaded) == 2
    assert loaded.get("a").to_dict() == corpus.get("a").to_dict()


def test_corpus_entity_counts_includes_topic():
    corpus = TableCorpus([simple_table("a")])
    counts = corpus.entity_counts()
    assert counts["topic"] == 1
    assert counts["e0"] == 1


def test_detect_subject_column():
    table = simple_table()
    assert detect_subject_column(table) == 0
    # Duplicate entities in column 0 disqualify it; column 1 is unique.
    table.columns[0].cells[1] = EntityCell("e0", "dup")
    assert detect_subject_column(table) == 1


def test_detect_subject_column_illegal_header():
    table = simple_table()
    table.columns[0].header = "Notes"
    assert detect_subject_column(table) == 1


def test_is_relational_limits():
    table = simple_table()
    assert is_relational(table)
    wide = Table("w", "", "", "", None, [
        Column(f"h{i}", "text", ["x"]) for i in range(21)
    ])
    assert not is_relational(wide)


def test_filter_relational_resets_subject(corpus):
    assert all(t.subject_column == detect_subject_column(t) for t in corpus)


def test_is_high_quality():
    table = simple_table()
    # Only 2 entity columns -> not high quality.
    assert not is_high_quality(table)
    table.columns.append(Column("Club", "entity",
                                [EntityCell(f"k{i}", f"club{i}") for i in range(4)]))
    # Needs >4 linked subject entities; we have 4.
    assert not is_high_quality(table)


def test_synthesizer_determinism(kb):
    config = SynthesisConfig(seed=9, n_tables=50)
    corpus1 = TableSynthesizer(kb, config).generate()
    corpus2 = TableSynthesizer(kb, config).generate()
    assert len(corpus1) == len(corpus2)
    for a, b in zip(corpus1, corpus2):
        assert a.to_dict() == b.to_dict()


def test_synthesizer_row_bounds(kb):
    config = SynthesisConfig(seed=9, n_tables=80, max_rows=10, min_rows=3)
    for table in TableSynthesizer(kb, config).generate():
        assert 3 <= table.n_rows <= 10


def test_synthesizer_object_columns_follow_kb(kb, corpus):
    """Every linked object cell must be consistent with a KB fact."""
    checked = 0
    for table in corpus.tables[:50]:
        subjects = table.columns[table.subject_column].cells
        for column in table.columns:
            if not column.is_entity or column.relation is None:
                continue
            for subject_cell, object_cell in zip(subjects, column.cells):
                if subject_cell.is_linked and object_cell.is_linked:
                    assert kb.has_fact(subject_cell.entity_id, column.relation,
                                       object_cell.entity_id)
                    checked += 1
    assert checked > 100


def test_synthesizer_unlinked_rate(kb):
    config = SynthesisConfig(seed=9, n_tables=100, unlinked_probability=0.3)
    corpus = TableSynthesizer(kb, config).generate()
    cells = [cell for table in corpus for _, _, cell in table.all_entity_cells()]
    unlinked = sum(1 for cell in cells if not cell.is_linked) / len(cells)
    assert 0.2 < unlinked < 0.4


def test_partition_no_overlap(splits):
    train_ids = {t.table_id for t in splits.train}
    dev_ids = {t.table_id for t in splits.validation}
    test_ids = {t.table_id for t in splits.test}
    assert not (train_ids & dev_ids)
    assert not (train_ids & test_ids)
    assert not (dev_ids & test_ids)


def test_partition_heldout_high_quality(splits):
    for table in list(splits.validation) + list(splits.test):
        assert is_high_quality(table)


def test_statistics_shape(corpus):
    stats = corpus_statistics(corpus)
    assert set(stats) == {"n_row", "n_ent_columns", "n_ent"}
    assert stats["n_row"]["min"] >= 3
    assert stats["n_row"]["max"] <= 24


def test_statistics_format(splits):
    text = format_statistics(splits_statistics(splits))
    assert "# row" in text
    assert "train" in text and "dev" in text and "test" in text


def test_statistics_empty_corpus():
    stats = corpus_statistics(TableCorpus([]))
    assert stats["n_row"]["mean"] == 0.0
