"""Tests for the career-coherent synthesis semantics (cell filling ground
truth must be *determined* by table context, not random)."""

import pytest

from repro.data.synthesis import SynthesisConfig, TableSynthesizer


@pytest.fixture(scope="module")
def career_corpus(kb):
    return TableSynthesizer(kb, SynthesisConfig(seed=5, n_tables=250)).generate(), kb


def _career(kb, athlete_id):
    return kb.objects_of(athlete_id, "athlete.club")


def test_transfers_use_previous_club(career_corpus):
    corpus, kb = career_corpus
    checked = 0
    for table in corpus:
        if table.section_title != "Transfers":
            continue
        season_id = table.topic_entity
        club_id = kb.objects_of(season_id, "season.club")[0]
        subjects = table.columns[table.subject_column].cells
        for column in table.columns:
            if column.relation != "athlete.club":
                continue
            for subject_cell, object_cell in zip(subjects, column.cells):
                if not (subject_cell.is_linked and object_cell.is_linked):
                    continue
                career = _career(kb, subject_cell.entity_id)
                index = career.index(club_id)
                assert index > 0, "transfer rows must have a previous club"
                assert object_cell.entity_id == career[index - 1]
                checked += 1
    assert checked > 10


def test_country_lists_use_current_club(career_corpus):
    corpus, kb = career_corpus
    checked = 0
    for table in corpus:
        if table.section_title != "Players":
            continue
        subjects = table.columns[table.subject_column].cells
        for column in table.columns:
            if column.relation != "athlete.club":
                continue
            for subject_cell, object_cell in zip(subjects, column.cells):
                if subject_cell.is_linked and object_cell.is_linked:
                    career = _career(kb, subject_cell.entity_id)
                    assert object_cell.entity_id == career[-1]
                    checked += 1
    assert checked > 5


def test_transfer_headers_are_moving_from_style(career_corpus):
    corpus, _ = career_corpus
    headers = set()
    for table in corpus:
        if table.section_title == "Transfers":
            for column in table.columns:
                if column.relation == "athlete.club":
                    headers.add(column.header.lower())
    assert headers <= {"moving from", "previous club"}
    assert headers


def test_unique_anchors_no_duplicate_season_transfers(career_corpus):
    corpus, _ = career_corpus
    seen = set()
    for table in corpus:
        if table.section_title == "Transfers":
            assert table.topic_entity not in seen
            seen.add(table.topic_entity)
