"""Sharded corpus codec: byte-level determinism, integrity, zero-copy reads.

The shard format's contract has three legs the tests pin down separately:

1. **Worker invariance** — the written bytes are a pure function of
   ``(kb, config, n_shards)``; the worker count may only change wall time.
2. **Integrity** — truncated or corrupted files fail loudly with
   :class:`ShardFormatError` / :class:`ShardIntegrityError`, never with a
   silently wrong table.
3. **Read-only zero-copy** — the index and payloads are immutable memmaps.
"""

import hashlib
import os
import shutil

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.shards import (
    INDEX_FILE,
    SPLIT_CODES,
    STRATEGY_IDS,
    ShardedDataset,
    ShardFormatError,
    ShardIntegrityError,
    bucket_code,
    shard_file,
    write_sharded_corpus,
)
from repro.data.synthesis import SynthesisConfig
from repro.kb.generator import WorldConfig, generate_world

SYNTH = SynthesisConfig(seed=5, n_tables=80)
N_SHARDS = 4


@pytest.fixture(scope="module")
def shard_kb():
    return generate_world(WorldConfig(seed=9))


@pytest.fixture(scope="module")
def shard_dir(shard_kb, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("shards") / "corpus")
    write_sharded_corpus(shard_kb, SYNTH, directory, n_shards=N_SHARDS)
    return directory


def _directory_digest(directory: str) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(os.listdir(directory)):
        digest.update(name.encode("utf-8"))
        with open(os.path.join(directory, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def _copy(shard_dir: str, tmp_path) -> str:
    clone = str(tmp_path / "clone")
    shutil.copytree(shard_dir, clone)
    return clone


# -- determinism ---------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 3])
def test_worker_count_never_changes_the_bytes(shard_kb, shard_dir, tmp_path,
                                              workers):
    directory = str(tmp_path / f"w{workers}")
    write_sharded_corpus(shard_kb, SYNTH, directory, n_shards=N_SHARDS,
                         workers=workers)
    assert _directory_digest(directory) == _directory_digest(shard_dir)


def test_rewrite_is_bit_identical(shard_kb, shard_dir, tmp_path):
    directory = str(tmp_path / "again")
    write_sharded_corpus(shard_kb, SYNTH, directory, n_shards=N_SHARDS)
    assert _directory_digest(directory) == _directory_digest(shard_dir)


def test_shard_count_is_validated(shard_kb, tmp_path):
    with pytest.raises(ValueError):
        write_sharded_corpus(shard_kb, SYNTH, str(tmp_path / "x"), n_shards=0)
    with pytest.raises(ValueError):
        write_sharded_corpus(shard_kb, SYNTH, str(tmp_path / "y"),
                             n_shards=0x10000)


# -- round trip ----------------------------------------------------------------

def test_every_record_round_trips_with_hash_verification(shard_dir):
    dataset = ShardedDataset(shard_dir, verify_hashes=True)
    assert len(dataset) > 0
    for index in range(len(dataset)):
        table = dataset.table(index)
        assert table.n_rows >= 1
        assert dataset.bucket_of(index) == bucket_code(table)
        assert dataset.strategy_of(index) == table.strategy
        assert dataset.shard_of(index) < N_SHARDS


def test_split_indices_partition_the_corpus(shard_dir):
    dataset = ShardedDataset(shard_dir)
    pieces = [dataset.split_indices(name) for name in SPLIT_CODES]
    merged = np.sort(np.concatenate(pieces))
    np.testing.assert_array_equal(merged, np.arange(len(dataset)))
    for name in SPLIT_CODES:
        for table in dataset.instances(name):
            assert table.n_rows >= 1
    with pytest.raises(KeyError):
        dataset.split_indices("dev")


def test_strategy_slicing_matches_decoded_tags(shard_dir):
    dataset = ShardedDataset(shard_dir)
    counts = dataset.metadata.strategy_counts
    assert sum(counts.values()) == len(dataset)
    covered = 0
    for strategy in STRATEGY_IDS:
        indices = dataset.strategy_indices(strategy)
        covered += len(indices)
        for index in indices[:2]:
            assert dataset.table(int(index)).strategy == strategy
    assert covered == len(dataset) - counts.get("untagged", 0)
    with pytest.raises(KeyError):
        dataset.strategy_indices("no_such_recipe")


def test_implements_dataset_protocol(shard_dir):
    dataset = ShardedDataset(shard_dir)
    assert isinstance(dataset, Dataset)
    meta = dataset.metadata
    assert meta.n_records == len(dataset)
    assert meta.extra["n_shards"] == N_SHARDS
    assert meta.extra["fingerprint"] == dataset.fingerprint()
    assert sum(meta.split_sizes.values()) == len(dataset)


def test_in_memory_escape_hatch_matches_streaming(shard_dir):
    dataset = ShardedDataset(shard_dir)
    splits = dataset.splits()
    assert len(splits) == len(dataset)
    streamed = [t.table_id for t in dataset.instances("train")]
    materialized = [t.table_id for t in splits.train]
    assert streamed == materialized


# -- goldens -------------------------------------------------------------------

def test_golden_fingerprint_is_stable(shard_dir):
    """The corpus fingerprint is part of the checkpoint-resume contract.

    If this golden moves, every previously saved mid-epoch checkpoint
    stops resuming — bump the format version instead of silently
    changing the bytes.
    """
    dataset = ShardedDataset(shard_dir)
    assert dataset.fingerprint() == "1fa3c9500ee53275b649cadb04bd7edc"


def test_golden_shard_epoch_order(shard_dir):
    """Pin the ``shuffle="shard"`` epoch plan for a fixed seed.

    The plan is built from index metadata alone (shard ids + bucket
    codes) — no payload I/O — so this golden locks both the on-disk
    index content and the planner's traversal order.
    """
    from repro.core.batching import shard_bucketed_chunk_indices

    dataset = ShardedDataset(shard_dir)
    train = dataset.split_indices("train")
    shard_ids = [dataset.shard_of(int(i)) for i in train]
    keys = [dataset.bucket_of(int(i)) for i in train]
    chunks = shard_bucketed_chunk_indices(shard_ids, keys, 8,
                                          np.random.default_rng(0))
    order = np.asarray([int(i) for chunk in chunks for i in chunk],
                       dtype=np.int64)
    assert len(train) == 72
    assert len(chunks) == 51
    digest = hashlib.blake2b(order.tobytes(), digest_size=8).hexdigest()
    assert digest == "07865ddeebaf6a13"


# -- integrity -----------------------------------------------------------------

def test_truncated_index_is_rejected(shard_dir, tmp_path):
    clone = _copy(shard_dir, tmp_path)
    path = os.path.join(clone, INDEX_FILE)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 7)
    with pytest.raises(ShardFormatError, match="truncated"):
        ShardedDataset(clone)


def test_header_only_index_is_rejected(shard_dir, tmp_path):
    clone = _copy(shard_dir, tmp_path)
    with open(os.path.join(clone, INDEX_FILE), "r+b") as handle:
        handle.truncate(10)
    with pytest.raises(ShardFormatError, match="truncated"):
        ShardedDataset(clone)


def test_bad_magic_is_rejected(shard_dir, tmp_path):
    clone = _copy(shard_dir, tmp_path)
    with open(os.path.join(clone, INDEX_FILE), "r+b") as handle:
        handle.write(b"NOTSHARD")
    with pytest.raises(ShardFormatError, match="magic"):
        ShardedDataset(clone)


def test_missing_meta_is_rejected(tmp_path):
    with pytest.raises(ShardFormatError, match="not a shard directory"):
        ShardedDataset(str(tmp_path / "nowhere"))


def test_corrupt_payload_fails_hash_verification(shard_dir, tmp_path):
    clone = _copy(shard_dir, tmp_path)
    dataset = ShardedDataset(clone)
    record = dataset.index[0]
    target = os.path.join(clone, shard_file(int(record["shard"])))
    with open(target, "r+b") as handle:
        handle.seek(int(record["offset"]))
        original = handle.read(1)
        handle.seek(int(record["offset"]))
        handle.write(bytes([original[0] ^ 0xFF]))
    fresh = ShardedDataset(clone, verify_hashes=True)
    with pytest.raises(ShardIntegrityError, match="hash mismatch"):
        fresh.table(0)
    # verification is opt-out per call
    with pytest.raises(ShardIntegrityError):
        ShardedDataset(clone).table(0, verify=True)


def test_record_past_shard_end_is_rejected(shard_dir, tmp_path):
    clone = _copy(shard_dir, tmp_path)
    dataset = ShardedDataset(clone)
    last = int(np.argmax(dataset.index["offset"]
                         + dataset.index["length"]))
    target = os.path.join(clone, shard_file(dataset.shard_of(last)))
    with open(target, "r+b") as handle:
        handle.truncate(os.path.getsize(target) - 3)
    fresh = ShardedDataset(clone)
    with pytest.raises(ShardFormatError, match="past"):
        fresh.table(last)


def test_index_memmap_is_read_only(shard_dir):
    dataset = ShardedDataset(shard_dir)
    with pytest.raises(ValueError):
        dataset.index["split"][0] = 2
    with pytest.raises(ValueError):
        dataset.payload(0)[0] = 0
