"""Tests for the API-doc generator tool."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def test_generator_produces_markdown(tmp_path):
    sys.path.insert(0, os.path.join(ROOT, "tools"))
    try:
        import gen_api_docs
        text = gen_api_docs.generate()
    finally:
        sys.path.pop(0)
    assert text.startswith("# API reference")
    # Core public modules all present.
    for module in ("repro.core.model", "repro.nn.tensor", "repro.tasks.metrics",
                   "repro.ext.numeric", "repro.analysis.errors"):
        assert f"## `{module}`" in text
    # Signatures included.
    assert "def attention_map" in text


def test_checked_in_api_docs_fresh():
    """docs/API.md must exist and cover the current package surface."""
    path = os.path.join(ROOT, "docs", "API.md")
    assert os.path.exists(path), "run python tools/gen_api_docs.py"
    with open(path) as handle:
        text = handle.read()
    assert "repro.ext.kb_injection" in text
    assert "repro.analysis" in text
