"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro import SynthesisConfig, TURLConfig, WorldConfig, build_context


def test_public_api_surface():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_build_context_without_pretraining():
    context = build_context(WorldConfig(seed=7),
                            SynthesisConfig(seed=8, n_tables=60),
                            TURLConfig(num_layers=1, dim=16,
                                       intermediate_dim=32, num_heads=2),
                            pretrain_epochs=0, vocab_size=800)
    assert context.pretrain_stats is None
    assert len(context.splits.train) > 0
    assert len(context.entity_vocab) > 5


def test_build_context_deterministic():
    kwargs = dict(
        world_config=WorldConfig(seed=7),
        synthesis_config=SynthesisConfig(seed=8, n_tables=60),
        model_config=TURLConfig(num_layers=1, dim=16, intermediate_dim=32,
                                num_heads=2),
        pretrain_epochs=1, vocab_size=800, seed=3,
    )
    a = build_context(**kwargs)
    b = build_context(**kwargs)
    np.testing.assert_allclose(
        a.model.embedding.word.weight.data,
        b.model.embedding.word.weight.data)
    assert a.pretrain_stats.losses == b.pretrain_stats.losses


def test_full_pipeline_smoke(context):
    """The session context exercised end to end: every split linearizes,
    collates, encodes; the probe runs; a checkpoint round-trips."""
    from repro.core.batching import collate

    for corpus in (context.splits.train, context.splits.validation,
                   context.splits.test):
        instances = [context.linearizer.encode(t) for t in corpus.tables[:4]]
        batch = collate(instances)
        token_hidden, entity_hidden = context.model.encode(batch)
        assert np.isfinite(token_hidden.data).all()
        assert np.isfinite(entity_hidden.data).all()


def test_entity_vocab_covers_frequent_corpus_entities(context):
    counts = context.splits.train.entity_counts()
    frequent = [e for e, c in counts.items() if c >= 2]
    missing = [e for e in frequent if e not in context.entity_vocab]
    assert not missing


def test_tokenizer_covers_corpus_metadata(context):
    """Frequent metadata words must not tokenize to [UNK]."""
    from collections import Counter
    from repro.text.tokenizer import basic_tokenize

    counts = Counter()
    for text in context.splits.train.metadata_texts():
        counts.update(basic_tokenize(text))
    frequent = [w for w, c in counts.most_common(50)]
    for word in frequent:
        assert "[UNK]" not in context.tokenizer.tokenize(word), word


def test_pretraining_stats_recorded(context):
    stats = context.pretrain_stats
    assert stats is not None
    assert len(stats.losses) > 0
    assert all(np.isfinite(stats.losses))
